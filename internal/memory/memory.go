// Package memory implements the region-structured shared address space used
// by Midway's runtime write detection.
//
// Following the paper's Section 3.1, the application's virtual address space
// is partitioned into large, fixed-size regions.  Data within a single
// region is either shared between all processors or private to each
// processor.  The data within a shared region is divided into software
// cache lines; all cache lines in a region are the same size, although
// different regions may have different cache line sizes.  Each cache line
// has, per processor, one dirtybit — which in Midway is really a Lamport
// timestamp recording the most recent modification to the line.
//
// A Layout describes the global partitioning of the address space: it is
// identical on every node, exactly as Midway arranges the same region
// structure in every process's virtual memory.  An Instance holds one
// node's local copy of the data and its private dirtybit arrays.
package memory

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Addr is an address in the simulated shared virtual address space.
// Address zero is never allocated, so it can serve as a sentinel.
type Addr uint32

// Range is a contiguous span of the shared address space, used to bind data
// to synchronization objects and to describe updates.
type Range struct {
	Addr Addr
	Size uint32
}

// End returns the first address past the range.
func (r Range) End() Addr { return r.Addr + Addr(r.Size) }

// Contains reports whether a lies within the range.
func (r Range) Contains(a Addr) bool { return a >= r.Addr && a < r.End() }

// Overlaps reports whether the two ranges share any address.
func (r Range) Overlaps(o Range) bool {
	return r.Addr < o.End() && o.Addr < r.End()
}

// Intersect returns the overlap of the two ranges and whether it is
// non-empty.
func (r Range) Intersect(o Range) (Range, bool) {
	lo := max(r.Addr, o.Addr)
	hi := min(r.End(), o.End())
	if lo >= hi {
		return Range{}, false
	}
	return Range{Addr: lo, Size: uint32(hi - lo)}, true
}

// Class distinguishes shared regions, whose writes must be detected, from
// private regions, whose template entry points simply return.
type Class uint8

const (
	// Shared data is replicated across processors and kept consistent by
	// the DSM protocol; every write to it must be trapped.
	Shared Class = iota
	// Private data belongs to a single processor.  Writes reaching a
	// private region's template pay only the misclassification penalty.
	Private
)

// String returns "shared" or "private".
func (c Class) String() string {
	if c == Private {
		return "private"
	}
	return "shared"
}

// Gran classifies a region's expected write granularity, guiding detectors
// that choose a write-detection mechanism per region (the Hybrid scheme).
// Regions tagged GranFine are best served by dirtybit timestamps; regions
// tagged GranCoarse by page twins and diffs.  GranAuto leaves the choice to
// the detector's measured-write-density heuristic.
type Gran uint8

const (
	// GranAuto lets the detector classify the region from observed writes.
	GranAuto Gran = iota
	// GranFine marks data written in small scattered pieces (routes to
	// RT-style dirtybit detection under the Hybrid scheme).
	GranFine
	// GranCoarse marks data written densely in bulk, or rebound between
	// synchronization objects (routes to VM-style twin-diff detection).
	GranCoarse
)

// String returns "auto", "fine" or "coarse".
func (g Gran) String() string {
	switch g {
	case GranFine:
		return "fine"
	case GranCoarse:
		return "coarse"
	default:
		return "auto"
	}
}

// Dirtybit timestamp sentinels.  A dirtybit is an int64 Lamport timestamp;
// the paper's footnote 1 describes the lazy scheme in which a store writes a
// cheap marker and the real timestamp is assigned when the guarding
// synchronization object is transferred.
const (
	// Clean marks a line that has never been modified (or whose
	// modifications were made at logical time zero, before any transfer).
	Clean int64 = 0
	// DirtyPending marks a line modified locally since the last transfer
	// of its guarding object, whose timestamp has not yet been assigned.
	DirtyPending int64 = math.MinInt64
)

// Region describes one fixed-size region of the shared address space.  The
// first page of a Midway region holds the dirtybit-update code template;
// here the Region value itself plays that role, carrying the line size and
// dirtybit location as "constants".
type Region struct {
	// Index is the region's position in the address space:
	// Index == Base >> regionShift.
	Index int
	// Base is the region's starting address.
	Base Addr
	// Size is the region size in bytes (the layout's fixed region size).
	Size uint32
	// Class records whether the region holds shared or private data.
	Class Class
	// LineShift is log2 of the cache line size.  Meaningful only for
	// shared regions.
	LineShift uint
	// Gran is the allocation's declared write-granularity class, consumed
	// by per-region detector dispatch.  Meaningful only for shared regions.
	Gran Gran
	// Name labels the allocation that created the region, for diagnostics.
	Name string
	// SpanHead is the index of the first region of the allocation span
	// this region belongs to (multi-region objects occupy consecutive
	// regions with identical attributes).
	SpanHead int
}

// LineSize returns the cache line size in bytes.
func (r *Region) LineSize() uint32 { return 1 << r.LineShift }

// Lines returns the number of cache lines in the region.
func (r *Region) Lines() int { return int(r.Size >> r.LineShift) }

// LineIndex returns the index of the cache line containing a, which must
// lie within the region.
func (r *Region) LineIndex(a Addr) int {
	return int(a-r.Base) >> r.LineShift
}

// LineRange returns the address range of the line with the given index.
func (r *Region) LineRange(idx int) Range {
	return Range{Addr: r.Base + Addr(uint32(idx)<<r.LineShift), Size: r.LineSize()}
}

// Contains reports whether a lies within the region.
func (r *Region) Contains(a Addr) bool {
	return a >= r.Base && a < r.Base+Addr(r.Size)
}

// Layout is the global description of the shared address space: the region
// table plus the bump allocators that pack objects into regions.  The same
// Layout (or an identically-constructed one, in multi-process deployments)
// is used by every node.
//
// Allocation is expected to happen during program setup; Layout methods are
// nevertheless safe for concurrent use.
type Layout struct {
	mu          sync.RWMutex
	regionShift uint
	regions     []*Region
	// cursors tracks the current fill point of the most recent region
	// opened for each (class, lineShift) combination, so small objects
	// pack together as a real allocator would.
	cursors map[cursorKey]cursor
	frozen  bool
	// frozenRegions caches the region table once the layout is frozen, so
	// the per-access RegionFor lookup is lock-free on the hot path.
	frozenRegions atomic.Pointer[[]*Region]
}

type cursorKey struct {
	class     Class
	lineShift uint
	gran      Gran
}

type cursor struct {
	region int // region index
	off    uint32
}

// DefaultRegionShift yields 1 MiB regions, "large" relative to both the
// 4 KB page size and typical cache line sizes, as the paper requires.
const DefaultRegionShift = 20

// MinLineShift and MaxLineShift bound supported cache line sizes
// (4 bytes .. 64 KiB).
const (
	MinLineShift = 2
	MaxLineShift = 16
)

// NewLayout returns an empty layout with the given region size
// (1 << regionShift bytes).  regionShift must be at least 12 (one VM page).
func NewLayout(regionShift uint) *Layout {
	if regionShift < 12 || regionShift > 26 {
		panic(fmt.Sprintf("memory: region shift %d out of range [12,26]", regionShift))
	}
	return &Layout{
		regionShift: regionShift,
		cursors:     make(map[cursorKey]cursor),
		// Region index 0 is a permanently-unmapped guard so that Addr 0
		// and small addresses fault loudly.
		regions: []*Region{nil},
	}
}

// RegionShift returns log2 of the region size.
func (l *Layout) RegionShift() uint { return l.regionShift }

// RegionSize returns the fixed region size in bytes.
func (l *Layout) RegionSize() uint32 { return 1 << l.regionShift }

// Regions returns the current region table.  Entry 0 is nil (the guard
// region).  The returned slice must not be modified.
func (l *Layout) Regions() []*Region {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.regions[:len(l.regions):len(l.regions)]
}

// NumRegions returns the number of region slots, including the guard.
func (l *Layout) NumRegions() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.regions)
}

// Freeze marks the layout complete.  Subsequent allocations panic: in the
// SPMD deployment every process must construct the identical layout before
// the parallel phase begins, so late allocation is a programming error.
func (l *Layout) Freeze() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.frozen = true
	regions := l.regions[:len(l.regions):len(l.regions)]
	l.frozenRegions.Store(&regions)
}

// Alloc reserves size bytes of the given class.  Shared allocations carry a
// cache line size of 1<<lineShift bytes; private allocations ignore
// lineShift.  Small objects are packed into the current region for their
// (class, line size); objects larger than one region receive a dedicated
// span of consecutive regions.  The returned address is aligned to the line
// size (minimum 8 bytes).
func (l *Layout) Alloc(name string, size uint32, class Class, lineShift uint) (Addr, error) {
	return l.AllocTagged(name, size, class, lineShift, GranAuto)
}

// AllocTagged is Alloc with an explicit write-granularity class.  Tagged
// allocations never share a region with differently-tagged data, so a
// per-region detector choice applies to exactly the data it was declared
// for.
func (l *Layout) AllocTagged(name string, size uint32, class Class, lineShift uint, gran Gran) (Addr, error) {
	if size == 0 {
		return 0, fmt.Errorf("memory: zero-size allocation %q", name)
	}
	if class == Shared && (lineShift < MinLineShift || lineShift > MaxLineShift) {
		return 0, fmt.Errorf("memory: allocation %q line shift %d out of range [%d,%d]",
			name, lineShift, MinLineShift, MaxLineShift)
	}
	if class == Private {
		lineShift = 3
	}
	if lineShift >= l.regionShift {
		return 0, fmt.Errorf("memory: allocation %q line size 2^%d not smaller than region size 2^%d",
			name, lineShift, l.regionShift)
	}

	align := uint32(1) << lineShift
	if align < 8 {
		align = 8
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.frozen {
		panic(fmt.Sprintf("memory: allocation %q after layout freeze", name))
	}

	regionSize := uint32(1) << l.regionShift
	if size > regionSize {
		// Dedicated span of consecutive regions.
		n := int((uint64(size) + uint64(regionSize) - 1) / uint64(regionSize))
		head := len(l.regions)
		for i := 0; i < n; i++ {
			l.appendRegion(name, class, lineShift, gran, head)
		}
		return l.regions[head].Base, nil
	}

	key := cursorKey{class: class, lineShift: lineShift, gran: gran}
	cur, ok := l.cursors[key]
	if ok {
		off := (cur.off + align - 1) &^ (align - 1)
		if off+size <= regionSize {
			l.cursors[key] = cursor{region: cur.region, off: off + size}
			return l.regions[cur.region].Base + Addr(off), nil
		}
	}
	idx := len(l.regions)
	l.appendRegion(name, class, lineShift, gran, idx)
	l.cursors[key] = cursor{region: idx, off: size}
	return l.regions[idx].Base, nil
}

// appendRegion adds one region to the table.  Caller holds l.mu.
func (l *Layout) appendRegion(name string, class Class, lineShift uint, gran Gran, spanHead int) {
	idx := len(l.regions)
	base := Addr(uint32(idx) << l.regionShift)
	if uint64(uint32(idx))<<l.regionShift > uint64(^uint32(0)) {
		panic("memory: address space exhausted")
	}
	l.regions = append(l.regions, &Region{
		Index:     idx,
		Base:      base,
		Size:      1 << l.regionShift,
		Class:     class,
		LineShift: lineShift,
		Gran:      gran,
		Name:      name,
		SpanHead:  spanHead,
	})
}

// RegionFor returns the region containing a, or nil if a is unmapped.  This
// is the software analogue of masking the low-order address bits to find
// the region's code template.
func (l *Layout) RegionFor(a Addr) *Region {
	idx := int(uint32(a) >> l.regionShift)
	if p := l.frozenRegions.Load(); p != nil {
		regions := *p
		if idx <= 0 || idx >= len(regions) {
			return nil
		}
		return regions[idx]
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	if idx <= 0 || idx >= len(l.regions) {
		return nil
	}
	return l.regions[idx]
}

// Segment is the portion of a Range that falls within a single region.
type Segment struct {
	Region *Region
	// Off is the byte offset of the segment within the region.
	Off uint32
	// Len is the segment length in bytes.
	Len uint32
}

// Addr returns the segment's starting address.
func (s Segment) Addr() Addr { return s.Region.Base + Addr(s.Off) }

// Segments splits rg into per-region segments.  It returns an error if any
// part of the range is unmapped.
func (l *Layout) Segments(rg Range) ([]Segment, error) {
	if rg.Size == 0 {
		return nil, nil
	}
	var segs []Segment
	a := rg.Addr
	remaining := rg.Size
	for remaining > 0 {
		r := l.RegionFor(a)
		if r == nil {
			return nil, fmt.Errorf("memory: address %#x unmapped", uint32(a))
		}
		off := uint32(a - r.Base)
		n := r.Size - off
		if n > remaining {
			n = remaining
		}
		segs = append(segs, Segment{Region: r, Off: off, Len: n})
		a += Addr(n)
		remaining -= n
	}
	return segs, nil
}

// CheckScalar verifies that a scalar access of the given size at a is fully
// mapped and does not cross a region boundary, returning the region.
func (l *Layout) CheckScalar(a Addr, size uint32) (*Region, error) {
	r := l.RegionFor(a)
	if r == nil {
		return nil, fmt.Errorf("memory: address %#x unmapped", uint32(a))
	}
	if uint32(a-r.Base)+size > r.Size {
		return nil, fmt.Errorf("memory: %d-byte access at %#x crosses region boundary", size, uint32(a))
	}
	return r, nil
}

// Instance is one node's local view of the address space: a copy of every
// region's data plus the node's dirtybit arrays for shared regions.
// Storage is materialized on first touch; Instance methods are safe for
// concurrent use by the application and the protocol handler (the usual
// entry-consistency caveat applies: concurrent access to the same line
// without synchronization is a program error).
type Instance struct {
	layout *Layout
	// mu serializes materialization; lookups never take it.  The store is
	// copy-on-write: every materialization publishes a fresh snapshot
	// through the atomic pointer, so the per-access fast path (every
	// instrumented load and store resolves its region's slice here) is a
	// single atomic load with no contention.
	mu    sync.Mutex
	store atomic.Pointer[instStore]
}

// instStore is one immutable snapshot of the instance's materialized
// storage, indexed by region index; nil until touched.  The slice headers
// are never mutated after publication — materializing a region copies the
// snapshot — but the backing arrays they point to are shared across
// snapshots and mutated freely (they are the simulated memory itself).
type instStore struct {
	data  [][]byte
	dirty [][]int64 // shared regions only
	// sum holds one dirtybit summary per shared region, allocated with the
	// region's dirtybit array.
	sum []*RegionSummary
}

// RegionSummary aggregates a shared region's dirtybit state so a
// collection scan can prove "no line in this region can ship" without
// walking the lines.  Pending counts lines currently holding the
// DirtyPending sentinel; MaxTS is a monotone upper bound on every
// timestamp ever stored in the region's dirtybits (stamps installed by
// scans and by incoming updates).  Both are maintained by the writers of
// the dirtybit array and read concurrently by scans, hence atomics.
//
// The fields are conservative summaries, not exact mirrors: a stale
// MaxTS can only be too high, and both errors merely forfeit the fast
// path, never correctness.
type RegionSummary struct {
	Pending atomic.Int64
	MaxTS   atomic.Int64
}

// NoteTime raises MaxTS to at least ts.
func (s *RegionSummary) NoteTime(ts int64) {
	for {
		cur := s.MaxTS.Load()
		if ts <= cur || s.MaxTS.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// NewInstance returns an instance over the layout with no storage
// materialized yet.
func NewInstance(l *Layout) *Instance {
	in := &Instance{layout: l}
	in.store.Store(&instStore{})
	return in
}

// Layout returns the layout this instance views.
func (in *Instance) Layout() *Layout { return in.layout }

// ensure materializes storage for the region and returns the data and
// dirtybit slices (dirty is nil for private regions).  Materialization
// publishes a fresh snapshot; the atomic store's release ordering makes
// the zeroed backing arrays visible to every subsequent lock-free lookup.
func (in *Instance) ensure(r *Region) ([]byte, []int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	cur := in.store.Load()
	if r.Index < len(cur.data) && cur.data[r.Index] != nil {
		return cur.data[r.Index], cur.dirty[r.Index]
	}
	n := len(cur.data)
	if r.Index >= n {
		n = r.Index + 16
	}
	next := &instStore{
		data:  make([][]byte, n),
		dirty: make([][]int64, n),
		sum:   make([]*RegionSummary, n),
	}
	copy(next.data, cur.data)
	copy(next.dirty, cur.dirty)
	copy(next.sum, cur.sum)
	next.data[r.Index] = make([]byte, r.Size)
	if r.Class == Shared {
		next.dirty[r.Index] = make([]int64, r.Lines())
		next.sum[r.Index] = &RegionSummary{}
	}
	in.store.Store(next)
	return next.data[r.Index], next.dirty[r.Index]
}

// Summary returns the dirtybit summary for a shared region, materializing
// the region if necessary.
func (in *Instance) Summary(r *Region) *RegionSummary {
	if r.Class != Shared {
		panic("memory: dirtybit summary requested for private region " + r.Name)
	}
	if s := in.store.Load(); r.Index < len(s.sum) && s.sum[r.Index] != nil {
		return s.sum[r.Index]
	}
	in.ensure(r)
	return in.store.Load().sum[r.Index]
}

// Data returns the node-local backing store for the region, materializing
// it if necessary.
func (in *Instance) Data(r *Region) []byte {
	// Fast path: already materialized (one atomic load, no locking —
	// every instrumented load and store resolves here).
	if s := in.store.Load(); r.Index < len(s.data) && s.data[r.Index] != nil {
		return s.data[r.Index]
	}
	d, _ := in.ensure(r)
	return d
}

// Dirtybits returns the node's dirtybit (timestamp) array for a shared
// region, one entry per cache line.
func (in *Instance) Dirtybits(r *Region) []int64 {
	if r.Class != Shared {
		panic("memory: dirtybits requested for private region " + r.Name)
	}
	if s := in.store.Load(); r.Index < len(s.dirty) && s.dirty[r.Index] != nil {
		return s.dirty[r.Index]
	}
	_, b := in.ensure(r)
	return b
}

// bytesAt returns the backing bytes for a scalar access, validating
// alignment with the region map.
func (in *Instance) bytesAt(a Addr, size uint32) ([]byte, *Region) {
	r, err := in.layout.CheckScalar(a, size)
	if err != nil {
		panic(err)
	}
	d := in.Data(r)
	off := uint32(a - r.Base)
	return d[off : off+size], r
}

// Read and write accessors.  These perform the raw memory operation only;
// write trapping (dirtybit updates, fault checks) is layered above by the
// DSM strategies.

// ReadU32 loads a little-endian 32-bit word.
func (in *Instance) ReadU32(a Addr) uint32 {
	b, _ := in.bytesAt(a, 4)
	return binary.LittleEndian.Uint32(b)
}

// WriteU32 stores a little-endian 32-bit word and returns the region.
func (in *Instance) WriteU32(a Addr, v uint32) *Region {
	b, r := in.bytesAt(a, 4)
	binary.LittleEndian.PutUint32(b, v)
	return r
}

// ReadU64 loads a little-endian 64-bit doubleword.
func (in *Instance) ReadU64(a Addr) uint64 {
	b, _ := in.bytesAt(a, 8)
	return binary.LittleEndian.Uint64(b)
}

// WriteU64 stores a little-endian 64-bit doubleword and returns the region.
func (in *Instance) WriteU64(a Addr, v uint64) *Region {
	b, r := in.bytesAt(a, 8)
	binary.LittleEndian.PutUint64(b, v)
	return r
}

// ReadF64 loads a float64.
func (in *Instance) ReadF64(a Addr) float64 {
	return math.Float64frombits(in.ReadU64(a))
}

// WriteF64 stores a float64 and returns the region.
func (in *Instance) WriteF64(a Addr, v float64) *Region {
	return in.WriteU64(a, math.Float64bits(v))
}

// WriteU32s stores len(vs) consecutive little-endian 32-bit words starting
// at a and returns the region.  The span must not cross a region boundary.
func (in *Instance) WriteU32s(a Addr, vs []uint32) *Region {
	b, r := in.bytesAt(a, uint32(len(vs))*4)
	for i, v := range vs {
		binary.LittleEndian.PutUint32(b[4*i:], v)
	}
	return r
}

// WriteU64s stores len(vs) consecutive little-endian doublewords starting
// at a and returns the region.  The span must not cross a region boundary.
func (in *Instance) WriteU64s(a Addr, vs []uint64) *Region {
	b, r := in.bytesAt(a, uint32(len(vs))*8)
	for i, v := range vs {
		binary.LittleEndian.PutUint64(b[8*i:], v)
	}
	return r
}

// WriteF64s stores len(vs) consecutive float64s starting at a and returns
// the region.  The span must not cross a region boundary.
func (in *Instance) WriteF64s(a Addr, vs []float64) *Region {
	b, r := in.bytesAt(a, uint32(len(vs))*8)
	for i, v := range vs {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return r
}

// inRegion returns the backing bytes when the whole range falls within a
// single mapped region — the common case for block copies, which skips the
// Segments allocation — or nil when it straddles regions (or is unmapped;
// the segment walk reports that).
func (in *Instance) inRegion(rg Range) []byte {
	r := in.layout.RegionFor(rg.Addr)
	if r == nil {
		return nil
	}
	off := uint32(rg.Addr - r.Base)
	if off+rg.Size > r.Size || off+rg.Size < off {
		return nil
	}
	d := in.Data(r)
	return d[off : off+rg.Size]
}

// ReadBytes copies the range into dst, which must be rg.Size long.
func (in *Instance) ReadBytes(rg Range, dst []byte) {
	if b := in.inRegion(rg); b != nil {
		copy(dst[:rg.Size], b)
		return
	}
	segs, err := in.layout.Segments(rg)
	if err != nil {
		panic(err)
	}
	off := uint32(0)
	for _, s := range segs {
		d := in.Data(s.Region)
		copy(dst[off:off+s.Len], d[s.Off:s.Off+s.Len])
		off += s.Len
	}
}

// WriteBytes copies src into the range.  The caller is responsible for
// write trapping.
func (in *Instance) WriteBytes(rg Range, src []byte) {
	if b := in.inRegion(rg); b != nil {
		copy(b, src[:rg.Size])
		return
	}
	segs, err := in.layout.Segments(rg)
	if err != nil {
		panic(err)
	}
	off := uint32(0)
	for _, s := range segs {
		d := in.Data(s.Region)
		copy(d[s.Off:s.Off+s.Len], src[off:off+s.Len])
		off += s.Len
	}
}
