package memory

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRangeOps(t *testing.T) {
	r := Range{Addr: 100, Size: 50}
	if r.End() != 150 {
		t.Errorf("End = %d", r.End())
	}
	if !r.Contains(100) || !r.Contains(149) || r.Contains(150) || r.Contains(99) {
		t.Error("Contains boundaries wrong")
	}
	if !r.Overlaps(Range{Addr: 149, Size: 1}) || r.Overlaps(Range{Addr: 150, Size: 10}) {
		t.Error("Overlaps boundaries wrong")
	}
	inter, ok := r.Intersect(Range{Addr: 120, Size: 100})
	if !ok || inter.Addr != 120 || inter.Size != 30 {
		t.Errorf("Intersect = %+v, %v", inter, ok)
	}
	if _, ok := r.Intersect(Range{Addr: 200, Size: 10}); ok {
		t.Error("disjoint ranges intersected")
	}
}

func TestIntersectProperties(t *testing.T) {
	f := func(a1, s1, a2, s2 uint16) bool {
		r1 := Range{Addr: Addr(a1), Size: uint32(s1)%100 + 1}
		r2 := Range{Addr: Addr(a2), Size: uint32(s2)%100 + 1}
		i1, ok1 := r1.Intersect(r2)
		i2, ok2 := r2.Intersect(r1)
		if ok1 != ok2 {
			return false
		}
		if ok1 && i1 != i2 {
			return false // intersection must be symmetric
		}
		if ok1 {
			// The intersection lies within both.
			if !r1.Contains(i1.Addr) || !r2.Contains(i1.Addr) {
				return false
			}
			if i1.End() > r1.End() || i1.End() > r2.End() {
				return false
			}
		}
		return ok1 == r1.Overlaps(r2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocPacking(t *testing.T) {
	l := NewLayout(16) // 64 KB regions
	a1, err := l.Alloc("a", 100, Shared, 3)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := l.Alloc("b", 100, Shared, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Same line size packs into the same region.
	if l.RegionFor(a1) != l.RegionFor(a2) {
		t.Error("same-attribute allocations did not pack")
	}
	// Alignment to at least 8 bytes.
	if uint32(a2)%8 != 0 {
		t.Errorf("allocation at %#x not 8-byte aligned", uint32(a2))
	}
	// Different line size opens a new region.
	a3, err := l.Alloc("c", 100, Shared, 6)
	if err != nil {
		t.Fatal(err)
	}
	if l.RegionFor(a3) == l.RegionFor(a1) {
		t.Error("different line size packed into the same region")
	}
	// Private data goes elsewhere too.
	a4, err := l.Alloc("d", 100, Private, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.RegionFor(a4).Class != Private {
		t.Error("private allocation in shared region")
	}
}

func TestAllocMultiRegionSpan(t *testing.T) {
	l := NewLayout(12) // 4 KB regions
	a, err := l.Alloc("big", 10*4096, Shared, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := l.RegionFor(a)
	if r == nil {
		t.Fatal("no region for span start")
	}
	// The whole span must be mapped with identical attributes.
	segs, err := l.Segments(Range{Addr: a, Size: 10 * 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 10 {
		t.Fatalf("span has %d segments, want 10", len(segs))
	}
	for _, s := range segs {
		if s.Region.Class != Shared || s.Region.LineShift != 3 {
			t.Error("span region attributes differ")
		}
		if s.Region.SpanHead != r.Index {
			t.Error("span head not recorded")
		}
	}
}

func TestAllocErrors(t *testing.T) {
	l := NewLayout(16)
	if _, err := l.Alloc("zero", 0, Shared, 3); err == nil {
		t.Error("zero-size allocation succeeded")
	}
	if _, err := l.Alloc("badline", 8, Shared, 1); err == nil {
		t.Error("line shift below minimum accepted")
	}
	if _, err := l.Alloc("hugeline", 8, Shared, 17); err == nil {
		t.Error("line shift above maximum accepted")
	}
	if _, err := l.Alloc("linegtregion", 8, Shared, 16); err == nil {
		t.Error("line size equal to region size accepted")
	}
}

func TestFreezePanicsOnAlloc(t *testing.T) {
	l := NewLayout(16)
	l.Freeze()
	defer func() {
		if recover() == nil {
			t.Error("allocation after freeze did not panic")
		}
	}()
	l.Alloc("late", 8, Shared, 3) //nolint:errcheck // panics first
}

func TestRegionForGuard(t *testing.T) {
	l := NewLayout(16)
	if l.RegionFor(0) != nil {
		t.Error("address 0 mapped")
	}
	if l.RegionFor(100) != nil {
		t.Error("guard region address mapped")
	}
	a, _ := l.Alloc("x", 8, Shared, 3)
	if l.RegionFor(a) == nil {
		t.Error("allocated address unmapped")
	}
	// Frozen fast path agrees with the locked path.
	l.Freeze()
	if l.RegionFor(a) == nil || l.RegionFor(0) != nil {
		t.Error("frozen RegionFor disagrees")
	}
}

func TestLineAddressBijection(t *testing.T) {
	l := NewLayout(16)
	a, _ := l.Alloc("arr", 4096, Shared, 4) // 16-byte lines
	r := l.RegionFor(a)
	f := func(off uint16) bool {
		addr := a + Addr(uint32(off)%4096)
		idx := r.LineIndex(addr)
		lr := r.LineRange(idx)
		// The line range contains the address and maps back to the same
		// index at every byte.
		if !lr.Contains(addr) {
			return false
		}
		return r.LineIndex(lr.Addr) == idx && r.LineIndex(lr.End()-1) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentsUnmapped(t *testing.T) {
	l := NewLayout(16)
	if _, err := l.Segments(Range{Addr: 10, Size: 4}); err == nil {
		t.Error("segments over guard region succeeded")
	}
	a, _ := l.Alloc("x", 16, Shared, 3)
	// A range running past all mappings errors.
	if _, err := l.Segments(Range{Addr: a, Size: 1 << 20}); err == nil {
		t.Error("segments past end of mappings succeeded")
	}
	// Empty range is fine.
	segs, err := l.Segments(Range{Addr: a, Size: 0})
	if err != nil || segs != nil {
		t.Errorf("empty range: %v, %v", segs, err)
	}
}

func TestCheckScalar(t *testing.T) {
	l := NewLayout(12)
	a, _ := l.Alloc("x", 4096, Shared, 3)
	if _, err := l.CheckScalar(a, 8); err != nil {
		t.Errorf("aligned scalar rejected: %v", err)
	}
	// Crossing the region end must be rejected.
	if _, err := l.CheckScalar(a+4092, 8); err == nil {
		t.Error("region-crossing scalar accepted")
	}
}

func TestInstanceReadWrite(t *testing.T) {
	l := NewLayout(16)
	a, _ := l.Alloc("x", 256, Shared, 3)
	in := NewInstance(l)

	in.WriteU32(a, 0xDEADBEEF)
	if got := in.ReadU32(a); got != 0xDEADBEEF {
		t.Errorf("ReadU32 = %#x", got)
	}
	in.WriteU64(a+8, 0x0123456789ABCDEF)
	if got := in.ReadU64(a + 8); got != 0x0123456789ABCDEF {
		t.Errorf("ReadU64 = %#x", got)
	}
	in.WriteF64(a+16, 3.25)
	if got := in.ReadF64(a + 16); got != 3.25 {
		t.Errorf("ReadF64 = %g", got)
	}
}

func TestInstanceBytesAcrossRegions(t *testing.T) {
	l := NewLayout(12) // 4 KB regions force a multi-region object
	a, _ := l.Alloc("big", 3*4096, Shared, 3)
	in := NewInstance(l)

	src := make([]byte, 2*4096)
	rand.New(rand.NewSource(1)).Read(src)
	rg := Range{Addr: a + 2048, Size: uint32(len(src))} // straddles two boundaries
	in.WriteBytes(rg, src)
	dst := make([]byte, len(src))
	in.ReadBytes(rg, dst)
	if !bytes.Equal(src, dst) {
		t.Error("cross-region bytes round trip failed")
	}
}

func TestDirtybits(t *testing.T) {
	l := NewLayout(16)
	a, _ := l.Alloc("x", 256, Shared, 3)
	in := NewInstance(l)
	r := l.RegionFor(a)
	bits := in.Dirtybits(r)
	if len(bits) != r.Lines() {
		t.Errorf("dirtybits length %d, want %d", len(bits), r.Lines())
	}
	for _, b := range bits {
		if b != Clean {
			t.Error("dirtybits not clean initially")
		}
	}
	// Same slice on repeated access.
	bits[3] = 42
	if in.Dirtybits(r)[3] != 42 {
		t.Error("dirtybits not stable across accesses")
	}
}

func TestDirtybitsPrivatePanics(t *testing.T) {
	l := NewLayout(16)
	a, _ := l.Alloc("p", 64, Private, 0)
	in := NewInstance(l)
	defer func() {
		if recover() == nil {
			t.Error("dirtybits for private region did not panic")
		}
	}()
	in.Dirtybits(l.RegionFor(a))
}

// TestInstanceRoundTripProperty: any write through an instance reads back
// identically and instances are independent.
func TestInstanceRoundTripProperty(t *testing.T) {
	l := NewLayout(16)
	a, _ := l.Alloc("arr", 4096, Shared, 3)
	l.Freeze()
	in1 := NewInstance(l)
	in2 := NewInstance(l)
	f := func(off uint16, v uint64) bool {
		addr := a + Addr(uint32(off)%4088)
		addr &^= 7
		in1.WriteU64(addr, v)
		return in1.ReadU64(addr) == v && in2.ReadU64(addr) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
