package memory

import "testing"

// TestAppendixAInstructionCounts ties the recorded instruction sequences
// to the paper's Table 1 cycle costs: the common cases take 9 cycles
// (4 inline + 5 template for doublewords, 5 + 4 for words) and the
// private path 6.
func TestAppendixAInstructionCounts(t *testing.T) {
	if got := InstructionCount(TemplateDoubleword); got != 9 {
		t.Errorf("doubleword path = %d instructions, want 9", got)
	}
	if got := InstructionCount(TemplateWord); got != 9 {
		t.Errorf("word path = %d instructions, want 9", got)
	}
	if got := InstructionCount(TemplatePrivate); got != 6 {
		t.Errorf("private path = %d instructions, want 6", got)
	}
	if got := InstructionCount(TemplateKind(99)); got != 0 {
		t.Errorf("unknown kind = %d", got)
	}
}

// TestAppendixAStructure checks the listings' documented invariants.
func TestAppendixAStructure(t *testing.T) {
	seen := map[TemplateKind]bool{}
	for _, seq := range AppendixA {
		if seen[seq.Kind] {
			t.Errorf("duplicate entry for kind %d", seq.Kind)
		}
		seen[seq.Kind] = true
		if len(seq.Inline) == 0 {
			t.Errorf("kind %d has no inline sequence", seq.Kind)
		}
	}
	for _, k := range []TemplateKind{TemplateDoubleword, TemplateWord, TemplateArea, TemplatePrivate} {
		if !seen[k] {
			t.Errorf("missing entry for kind %d", k)
		}
	}
}
