package memory

// This file records the paper's Appendix A: the exact MIPS R3000
// instruction sequences of the dirtybit update path.  Every dirtybit
// update is handled by two code sequences — one emitted inline by the
// compiler after the store, and one stored in the write-protected first
// page of the region (the "template"), specialized with the region's
// cache line size and dirtybit location as constants.
//
// The simulator executes the equivalent logic in Go, but charges costs
// from these sequences: the cost model's cycle counts are the instruction
// counts below (one cycle per issued instruction on the R3000, with no
// cache-missing loads and one non-stalling store on a sufficiently deep
// write buffer, as the paper argues).

// TemplateKind names a dirtybit-update entry point.
type TemplateKind int

const (
	// TemplateDoubleword handles a doubleword store to a doubleword-size
	// cache line, the floating-point common case (Appendix A, Figure 5).
	TemplateDoubleword TemplateKind = iota
	// TemplateWord handles a word store to a word-size cache line, the
	// integer common case (Figure 6).
	TemplateWord
	// TemplateArea handles unaligned stores and structure assignments
	// (Figure 7): the out-of-line path that saves registers and calls a
	// higher-level routine.
	TemplateArea
	// TemplatePrivate is the entry point for every write that reaches a
	// private region's template: it simply returns (Figure 8).
	TemplatePrivate
)

// TemplateSequence lists one entry point's instructions.
type TemplateSequence struct {
	Kind TemplateKind
	// Inline is the sequence the compiler emits after the store.
	Inline []string
	// Template is the sequence stored at the region base.
	Template []string
}

// AppendixA reproduces the paper's instruction listings.  The original
// store instruction itself is not part of the detection overhead and is
// not listed.
var AppendixA = []TemplateSequence{
	{
		Kind: TemplateDoubleword,
		Inline: []string{
			"lui  a0, <mask_for_template>", // load mask for start of region address
			"and  at, a0, rx",              // generate addr for dirtybit template
			"jalr at",                      // jump to dirtybit update code
			"sub  a0, rx, a0",              // compute offset w/in region (delay slot)
		},
		Template: []string{
			"lui  at, <dbit_address>", // load addr of start of dbits for region
			"srl  a1, a0, 1",          // divide offset by 2 to get dbit offset
			"addu at, a1, at",         // generate address of dbit
			"jr   ra",                 // and return
			"sw   zero, 0(at)",        // zero dbit to mark as "dirty"
		},
	},
	{
		Kind: TemplateWord,
		Inline: []string{
			"lui  at, <mask_for_template>",
			"and  a0, at, rx",
			"or   at, a0, <entryW_offset>", // entry point within template
			"jalr at",
			"sub  a0, rx, a0",
		},
		Template: []string{
			"lui  at, <dbit_address>",
			"addu at, a1, at", // offset in data region equals dbit offset
			"jr   ra",
			"sw   zero, 0(at)",
		},
	},
	{
		Kind: TemplateArea,
		Inline: []string{
			"lui  at, <mask_for_template>",
			"and  a0, at, rx",
			"or   at, a0, <entryA_offset>",
			"addi a1, zero, <object_size>", // arg1: size of the object written
			"jalr at",
			"sub  a0, rx, a0",
		},
		// The template allocates a stack frame, saves temporaries, and
		// calls a higher-level routine; the constant below stands in for
		// that rarely-executed path.
		Template: nil,
	},
	{
		Kind: TemplatePrivate,
		// The inline sequence still executes (the compiler classified
		// the store as shared); only the template short-circuits.
		Inline: []string{
			"lui  a0, <mask_for_template>",
			"and  at, a0, rx",
			"jalr at",
			"sub  a0, rx, a0",
		},
		Template: []string{
			"jr   ra", // simply return to caller
			"nop",     // fill jump delay slot
		},
	},
}

// InstructionCount returns the total dynamic instruction count of an
// entry point (inline + template), the quantity the cost model charges as
// cycles.
func InstructionCount(k TemplateKind) int {
	for _, seq := range AppendixA {
		if seq.Kind == k {
			return len(seq.Inline) + len(seq.Template)
		}
	}
	return 0
}
