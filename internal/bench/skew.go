package bench

import (
	"fmt"
	"io"

	"midway"
	"midway/internal/apps/skew"
)

// SkewCell is one dynamic-ownership measurement: the seeded-zipfian
// skewed-lock workload at one topology, run with migration off and on.
// The workload gives every lock a dominant acquirer that aligns with
// neither directory layout, so with migration off each steady-state
// acquire of a remote-homed lock is a brokered three-message round trip;
// with migration on, each lock's home moves to its dominant acquirer and
// the steady state goes local.  Both runs must produce the same checksum
// — the counters are commutative sums, independent of the protocol that
// moved them.
type SkewCell struct {
	Procs   int    `json:"procs"`
	Sched   string `json:"sched"`
	Migrate bool   `json:"migrate"`
	// Messages is the total protocol message count; MsgMax the busiest
	// node's count and MsgMean the per-node average — migration should
	// shrink the total and flatten the max toward the mean.
	Messages uint64  `json:"messages"`
	MsgMax   uint64  `json:"msg_max"`
	MsgMean  float64 `json:"msg_mean"`
	// Imbalance is MsgMax/MsgMean (1.0 = perfectly flat load).
	Imbalance float64 `json:"imbalance"`
	// PerNode is each node's protocol message count.
	PerNode []uint64 `json:"per_node"`
	// KB is the total data transferred; SimSeconds the simulated time.
	KB         float64 `json:"kb"`
	SimSeconds float64 `json:"sim_seconds"`
	Checksum   float64 `json:"checksum"`
}

// skewGrid lists the topology points.
func skewGrid() []int { return []int{2, 4, 8} }

// skewConfig sizes the workload for a scale.
func skewConfig(scale Scale) skew.Config {
	cfg := skew.Default()
	switch scale {
	case ScaleSmall:
		cfg.Locks, cfg.Ops = 16, 64
	case ScaleMedium:
		cfg.Locks, cfg.Ops = 32, 256
	case ScalePaper:
		cfg.Locks, cfg.Ops = 64, 1024
	}
	return cfg
}

// RunSkew measures the skewed-lock grid at the given scale under both
// execution engines, with migration off and on, asserting that the two
// protocols compute identical results.
func RunSkew(scale Scale) ([]SkewCell, error) {
	var out []SkewCell
	for _, procs := range skewGrid() {
		for _, sched := range ScalingScheds {
			var pair [2]SkewCell
			for i, migrate := range []bool{false, true} {
				mcfg := midway.Config{Nodes: procs, Strategy: midway.RT, Migrate: migrate}
				if migrate && MigrateThreshold != 0 {
					mcfg.MigrateThreshold = MigrateThreshold
				}
				if sched == "lockstep" {
					mcfg.Sched = sched
					mcfg.SchedThreads = SchedThreads
				}
				res, st, err := skew.RunDetail(mcfg, skewConfig(scale))
				if err != nil {
					return nil, fmt.Errorf("bench: skew %dp migrate=%v under %s: %w", procs, migrate, sched, err)
				}
				cell := SkewCell{
					Procs:      procs,
					Sched:      sched,
					Migrate:    migrate,
					PerNode:    make([]uint64, 0, len(st)),
					KB:         res.KBTransferredTotal(),
					SimSeconds: res.Seconds,
					Checksum:   res.Checksum,
				}
				for _, s := range st {
					cell.PerNode = append(cell.PerNode, s.Messages)
					cell.Messages += s.Messages
					if s.Messages > cell.MsgMax {
						cell.MsgMax = s.Messages
					}
				}
				if len(st) > 0 {
					cell.MsgMean = float64(cell.Messages) / float64(len(st))
				}
				if cell.MsgMean > 0 {
					cell.Imbalance = float64(cell.MsgMax) / cell.MsgMean
				}
				pair[i] = cell
			}
			if pair[0].Checksum != pair[1].Checksum {
				return nil, fmt.Errorf("bench: skew %dp under %s: migrate-on checksum %g diverged from migrate-off %g",
					procs, sched, pair[1].Checksum, pair[0].Checksum)
			}
			out = append(out, pair[0], pair[1])
		}
	}
	return out, nil
}

// FprintSkew renders the dynamic-ownership message-load table.
func FprintSkew(w io.Writer, cells []SkewCell) {
	fmt.Fprintln(w, "Dynamic ownership: per-node protocol message load on the skewed-lock workload")
	fmt.Fprintln(w, "(migration off vs on at identical checksums; migration moves each lock's home to")
	fmt.Fprintln(w, "its dominant acquirer, so totals shrink and the busiest node flattens toward the mean)")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "procs\tsched\tmigrate\tmessages\tmax node\tmean node\timbalance\tKB\tsim s")
	for _, c := range cells {
		fmt.Fprintf(tw, "%d\t%s\t%v\t%d\t%d\t%.1f\t%.2f\t%.1f\t%.4f\n",
			c.Procs, c.Sched, c.Migrate, c.Messages, c.MsgMax, c.MsgMean,
			c.Imbalance, c.KB, c.SimSeconds)
	}
	tw.Flush()
}
