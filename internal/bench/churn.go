package bench

import (
	"fmt"
	"io"

	"midway"
	"midway/internal/apps/churn"
	"midway/internal/cost"
	"midway/internal/member"
)

// ChurnCell is one elastic-membership measurement: the churn work queue at
// one topology, run four times — fixed membership, joins only, drains
// only, and the full join+drain schedule — so the traffic deltas isolate
// what each membership operation costs.  Every run must produce the same
// checksum: the workload's final memory is independent of the membership
// trajectory.
//
// Simulated execution time is reported for the fixed and fully-churned
// runs but carries no overhead ratio: under the lazy lock protocol a
// fixed-membership run may legally serialize on one token holder (local
// re-acquires are free and never yield), while membership changes force
// the token to circulate, so the time delta is dominated by the induced
// contention regime rather than by the membership operations themselves.
// The direct costs are the join latency (the sponsor blocks from the Join
// call until the admission commits) and the extra bytes moved by
// join-time state transfer and drain-time handoff.
type ChurnCell struct {
	Procs    int    `json:"procs"`     // founding nodes
	MaxNodes int    `json:"max_nodes"` // provisioned capacity
	Sched    string `json:"sched"`
	Joins    int    `json:"joins"`  // scheduled runtime admissions
	Drains   int    `json:"drains"` // scheduled graceful departures
	// JoinLatencyUS is the mean sponsor-observed join latency in
	// simulated microseconds, from the joins-only run.
	JoinLatencyUS float64 `json:"join_latency_us"`
	// JoinKB / DrainKB are the extra kilobytes the joins-only and
	// drains-only runs moved over the fixed baseline: join-time state
	// transfer (directory plus full-data bindings) and drain-time
	// handoff (authoritative copies and token forwards; zero when the
	// leaver owns no tokens).  Under the lockstep engine the deltas also
	// include the update traffic of the token circulation the membership
	// change induces — a fixed-membership run may never circulate at all.
	JoinKB  float64 `json:"join_kb"`
	DrainKB float64 `json:"drain_kb"`
	// FixedSimSeconds / ChurnSimSeconds are the simulated execution times
	// of the fixed and fully-churned runs; FixedKB / ChurnKB their total
	// transferred data.
	FixedSimSeconds float64 `json:"fixed_sim_seconds"`
	ChurnSimSeconds float64 `json:"churn_sim_seconds"`
	FixedKB         float64 `json:"fixed_kb"`
	ChurnKB         float64 `json:"churn_kb"`
	// Checksum is the (matching) result digest of all four runs.
	Checksum float64 `json:"checksum"`
}

// churnGrid lists the topology points: each founding count admits two
// spares mid-run and drains two members (one founder, one of the
// admitted spares), exercising join, leave and rejoin-capacity paths.
func churnGrid() []struct{ procs, maxNodes int } {
	return []struct{ procs, maxNodes int }{
		{2, 4}, {4, 6}, {8, 10},
	}
}

// churnConfig sizes the workload for a scale.  Per-task compute is set
// well above the cost of one lock transfer, so workers overlap compute
// with token circulation instead of convoying on the queue.
func churnConfig(scale Scale) churn.Config {
	cfg := churn.Default()
	switch scale {
	case ScaleSmall:
		cfg.Tasks, cfg.WorkCycles = 64, 50000
	case ScaleMedium:
		cfg.Tasks, cfg.WorkCycles = 512, 50000
	case ScalePaper:
		cfg.Tasks, cfg.WorkCycles = 4096, 50000
	}
	return cfg
}

// RunChurn measures the churn grid at the given scale under both
// execution engines.
func RunChurn(scale Scale) ([]ChurnCell, error) {
	var out []ChurnCell
	for _, pt := range churnGrid() {
		for _, sched := range ScalingScheds {
			base := churnConfig(scale)
			q := base.Tasks / 8
			joins := []member.ScheduleEntry{
				{Node: pt.procs, Round: q},
				{Node: pt.procs + 1, Round: 2 * q},
			}
			drains := []member.ScheduleEntry{
				{Node: 1, Round: 4 * q},
				{Node: pt.procs, Round: 5 * q},
			}

			mcfg := midway.Config{Nodes: pt.procs, Strategy: midway.RT}
			if sched == "lockstep" {
				mcfg.Sched = sched
			}
			fixed, err := churn.Run(mcfg, base)
			if err != nil {
				return nil, fmt.Errorf("bench: churn fixed %dp under %s: %w", pt.procs, sched, err)
			}

			elastic := mcfg
			elastic.MaxNodes = pt.maxNodes
			joinsOnly := base
			joinsOnly.Joins = joins
			joined, met, err := churn.RunWithMetrics(elastic, joinsOnly)
			if err != nil {
				return nil, fmt.Errorf("bench: churn joins-only %d->%dp under %s: %w", pt.procs, pt.maxNodes, sched, err)
			}

			drainsOnly := base
			drainsOnly.Drains = drains[:1] // the spare never joined; drain only the founder
			drained, err := churn.Run(elastic, drainsOnly)
			if err != nil {
				return nil, fmt.Errorf("bench: churn drains-only %dp under %s: %w", pt.procs, sched, err)
			}

			full := base
			full.Joins, full.Drains = joins, drains
			churned, err := churn.Run(elastic, full)
			if err != nil {
				return nil, fmt.Errorf("bench: churn elastic %d->%dp under %s: %w", pt.procs, pt.maxNodes, sched, err)
			}

			for _, r := range []struct {
				name     string
				checksum float64
			}{
				{"joins-only", joined.Checksum},
				{"drains-only", drained.Checksum},
				{"full churn", churned.Checksum},
			} {
				if r.checksum != fixed.Checksum {
					return nil, fmt.Errorf("bench: churn %dp under %s: %s checksum %g diverged from fixed %g",
						pt.procs, sched, r.name, r.checksum, fixed.Checksum)
				}
			}

			var latency float64
			for _, l := range met.JoinLatencies {
				latency += float64(l)
			}
			if n := len(met.JoinLatencies); n > 0 {
				latency = latency / float64(n) / cost.CyclesPerMicrosecond
			}
			out = append(out, ChurnCell{
				Procs:           pt.procs,
				MaxNodes:        pt.maxNodes,
				Sched:           sched,
				Joins:           len(joins),
				Drains:          len(drains),
				JoinLatencyUS:   latency,
				JoinKB:          joined.KBTransferredTotal() - fixed.KBTransferredTotal(),
				DrainKB:         drained.KBTransferredTotal() - fixed.KBTransferredTotal(),
				FixedSimSeconds: fixed.Seconds,
				ChurnSimSeconds: churned.Seconds,
				FixedKB:         fixed.KBTransferredTotal(),
				ChurnKB:         churned.KBTransferredTotal(),
				Checksum:        churned.Checksum,
			})
		}
	}
	return out, nil
}

// FprintChurn renders the elastic-membership cost table.
func FprintChurn(w io.Writer, cells []ChurnCell) {
	fmt.Fprintln(w, "Elastic membership: join latency and join/drain traffic on the churn work queue")
	fmt.Fprintln(w, "(all membership trajectories produce identical checksums; KB deltas vs the fixed run")
	fmt.Fprintln(w, "isolate join-time state transfer and drain-time handoff)")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "procs\tsched\tjoin lat us\tjoin KB\tdrain KB\tfixed sim s\tchurn sim s\tfixed KB\tchurn KB")
	for _, c := range cells {
		fmt.Fprintf(tw, "%d->%d\t%s\t%.1f\t%.2f\t%.2f\t%.4f\t%.4f\t%.1f\t%.1f\n",
			c.Procs, c.MaxNodes, c.Sched, c.JoinLatencyUS, c.JoinKB, c.DrainKB,
			c.FixedSimSeconds, c.ChurnSimSeconds, c.FixedKB, c.ChurnKB)
	}
	tw.Flush()
}
