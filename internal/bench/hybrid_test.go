package bench

import (
	"strings"
	"testing"
)

// TestHybridComparison runs the hybrid experiment at small scale and
// checks its sanity properties: every cell is populated, and per-region
// dispatch never costs more than the worse of the two pure mechanisms
// (the strong ≤ min(RT, VM) + 5% claim is checked at medium scale by the
// midway-bench acceptance run; small inputs are too noisy for it).
func TestHybridComparison(t *testing.T) {
	rows, err := HybridComparison(4, ScaleSmall, "hybrid", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AppNames) {
		t.Fatalf("hybrid comparison has %d rows, want %d", len(rows), len(AppNames))
	}
	for _, r := range rows {
		if r.RTSecs <= 0 || r.VMSecs <= 0 || r.HybridSecs <= 0 || r.StandaloneSecs <= 0 {
			t.Errorf("%s: missing execution times: %+v", r.App, r)
		}
		if worse := max(r.RTSecs, r.VMSecs); r.HybridSecs > worse*1.05 {
			t.Errorf("%s: hybrid (%.4fs) slower than both RT (%.4fs) and VM (%.4fs)",
				r.App, r.HybridSecs, r.RTSecs, r.VMSecs)
		}
	}

	var sb strings.Builder
	FprintHybrid(&sb, 4, ScaleSmall, "hybrid", rows)
	out := sb.String()
	for _, app := range AppNames {
		if !strings.Contains(out, app) {
			t.Errorf("rendered hybrid table missing %q", app)
		}
	}
	if !strings.Contains(out, "Hybrid (MB)") {
		t.Error("rendered hybrid table missing the data-transfer columns")
	}
}
