// Package bench is the evaluation harness: it reruns the paper's
// experiments and renders every table and figure of the evaluation section
// (Figure 2, Tables 1–5, Figures 3 and 4), plus this reproduction's own
// Section 3.5 ablation.
//
// The paper derives Tables 3, 4 and 5 by multiplying measured
// per-primitive costs (Table 1) by per-application invocation counts
// (Table 2).  This harness does exactly that: it runs the five
// applications on the DSM, harvests the counters, and applies the same
// arithmetic.
package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"midway"
	"midway/internal/apps"
	"midway/internal/apps/cholesky"
	"midway/internal/apps/churn"
	"midway/internal/apps/matmul"
	"midway/internal/apps/qsort"
	"midway/internal/apps/skew"
	"midway/internal/apps/sor"
	"midway/internal/apps/water"
	"midway/internal/member"
)

// Scale selects input sizes.
type Scale int

const (
	// ScaleSmall runs in well under a second per configuration (tests).
	ScaleSmall Scale = iota
	// ScaleMedium is the default for the evaluation binary: a few
	// seconds for the full suite, with counts large enough to show the
	// paper's contrasts clearly.
	ScaleMedium
	// ScalePaper uses the paper's input sizes (minutes for the full
	// suite).
	ScalePaper
)

// ParseScale converts "small", "medium" or "paper".
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return ScaleSmall, nil
	case "medium", "":
		return ScaleMedium, nil
	case "paper":
		return ScalePaper, nil
	}
	return 0, fmt.Errorf("bench: unknown scale %q", s)
}

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScalePaper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// AppNames lists the applications in the paper's column order.
var AppNames = []string{"water", "quicksort", "matrix", "sor", "cholesky"}

// FaultSpec, when non-empty, injects deterministic transport faults (in
// transport.ParseFaultSpec format) into every system RunApp builds.  The
// CLIs set it from their -fault flag; results must be identical to a
// fault-free run — the reliable delivery layer is what is being exercised.
var FaultSpec string

// Partition, when non-empty, injects a deterministic simulated-time
// network partition (in core.ParsePartitionSpec format) into every system
// RunApp builds, with OnPartition selecting the declared-partition
// policy.  The CLIs set both from their -partition and -on-partition
// flags.  Under the fence policy a healed run's verified checksum must
// equal the partition-free run's — nothing is lost at the cut.
var (
	Partition   string
	OnPartition midway.PartitionPolicy
)

// TraceDir, when non-empty, makes RunApp write one protocol event trace
// per run into that directory, named <app>-<scheme>-<procs>p plus a
// format-specific extension.  TraceFormat selects the encoding ("text",
// "jsonl" or "chrome"; empty means text).  Tracing never perturbs the
// simulated results.  The CLIs set these from their -trace/-trace-format
// flags.
var (
	TraceDir    string
	TraceFormat string
)

// ProfileObjects, when set, aggregates per-object and per-region profiles
// into every Result RunApp returns; with TraceDir also set, each run's
// hot-objects tables are written alongside its trace as a .profile file.
var ProfileObjects bool

// Sched, when non-empty, selects the execution engine ("goroutine" or
// "lockstep") for every system RunApp builds; SchedThreads caps the
// lockstep engine's concurrency per cell, so harnesses can keep cells ×
// engine threads within GOMAXPROCS.  The CLIs set both from their -sched
// and -workers flags.  Simulated results are engine-independent wherever
// the goroutine engine is deterministic at all, and under lockstep they
// are byte-identical at any GOMAXPROCS.
var (
	Sched        string
	SchedThreads int
)

// Migrate, when set, enables dynamic lock-home migration for every
// system RunApp builds; MigrateThreshold overrides the dominance
// threshold (zero keeps the default).  The CLIs set both from their
// -migrate and -migrate-threshold flags.  Simulated results are
// identical either way — migration changes where the protocol's
// messages go, not what the application computes.
var (
	Migrate          bool
	MigrateThreshold float64
)

// JoinSpec and DrainSpec, when non-empty, schedule elastic-membership
// churn for the churn application ("NODE@ROUND,..." as parsed by
// member.ParseSchedule).  The CLIs set them from their -join and -drain
// flags; the configuration must provision spare capacity with MaxNodes.
// Only the churn workload enacts them — the paper applications run with
// fixed membership.
var (
	JoinSpec  string
	DrainSpec string
)

// RaceDetect, when set, enables the entry-consistency race detector for
// every system RunApp builds; PlantRace additionally arms the sor
// workload's deliberate unguarded write (the detector's true-positive
// oracle).  The CLIs set both from their -race-detect and -plant-race
// flags.  The detector charges no simulated cycles, so measured results
// are identical either way.
var (
	RaceDetect bool
	PlantRace  bool
)

// traceExt maps a trace format to its file extension.
func traceExt(format string) string {
	switch format {
	case "jsonl":
		return ".jsonl"
	case "chrome":
		return ".json"
	default:
		return ".trace"
	}
}

// cellName labels one run for its trace file: app, detection scheme (the
// registry name when set, else the strategy), and processor count.
func cellName(app string, mcfg midway.Config) string {
	scheme := mcfg.Scheme
	if scheme == "" {
		scheme = strings.ToLower(mcfg.Strategy.String())
	}
	return fmt.Sprintf("%s-%s-%dp", app, scheme, mcfg.Nodes)
}

// RunApp executes one application at the given scale under the given DSM
// configuration, applying the package-level FaultSpec/TraceDir/
// ProfileObjects settings.
func RunApp(name string, mcfg midway.Config, scale Scale) (apps.Result, error) {
	if FaultSpec != "" && mcfg.FaultSpec == "" {
		mcfg.FaultSpec = FaultSpec
	}
	if Partition != "" && mcfg.Partition == "" {
		mcfg.Partition = Partition
	}
	if OnPartition != midway.PartitionFence && mcfg.OnPartition == midway.PartitionFence {
		mcfg.OnPartition = OnPartition
		if OnPartition == midway.PartitionDegrade {
			mcfg.OnCrash = midway.CrashDegrade
		}
	}
	if Sched != "" && mcfg.Sched == "" {
		mcfg.Sched = Sched
		if Sched == "lockstep" && mcfg.SchedThreads == 0 {
			mcfg.SchedThreads = SchedThreads
		}
	}
	if ProfileObjects {
		mcfg.ProfileObjects = true
	}
	if Migrate && !mcfg.Migrate {
		mcfg.Migrate = true
		mcfg.MigrateThreshold = MigrateThreshold
	}
	if RaceDetect {
		mcfg.RaceDetect = true
	}
	var traceFile *os.File
	if TraceDir != "" && mcfg.Trace == nil {
		f, err := os.Create(filepath.Join(TraceDir, cellName(name, mcfg)+traceExt(TraceFormat)))
		if err != nil {
			return apps.Result{}, fmt.Errorf("bench: trace: %w", err)
		}
		traceFile = f
		mcfg.Trace = f
		mcfg.TraceFormat = TraceFormat
	}
	res, err := runApp(name, mcfg, scale)
	if traceFile != nil {
		if cerr := traceFile.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("bench: trace: %w", cerr)
		}
	}
	if err == nil && ProfileObjects && TraceDir != "" {
		err = writeProfileFile(filepath.Join(TraceDir, cellName(name, mcfg)+".profile"), res)
	}
	return res, err
}

// writeProfileFile renders one run's hot-objects tables to a file.
func writeProfileFile(path string, res apps.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench: profile: %w", err)
	}
	res.WriteProfiles(f)
	if err := f.Close(); err != nil {
		return fmt.Errorf("bench: profile: %w", err)
	}
	return nil
}

// runApp dispatches to the application's Run.
func runApp(name string, mcfg midway.Config, scale Scale) (apps.Result, error) {
	switch name {
	case "water":
		cfg := water.Default()
		switch scale {
		case ScaleSmall:
			cfg.N, cfg.Steps = 32, 2
		case ScaleMedium:
			cfg.N, cfg.Steps = 200, 3
		case ScalePaper:
			cfg = water.Paper()
		}
		return water.Run(mcfg, cfg)
	case "quicksort":
		cfg := qsort.Default()
		switch scale {
		case ScaleSmall:
			cfg.N, cfg.Threshold = 2048, 64
		case ScaleMedium:
			cfg.N, cfg.Threshold = 24000, 500
		case ScalePaper:
			cfg = qsort.Paper()
		}
		return qsort.Run(mcfg, cfg)
	case "matrix":
		cfg := matmul.Default()
		switch scale {
		case ScaleSmall:
			cfg.N = 48
		case ScaleMedium:
			cfg.N = 160
		case ScalePaper:
			cfg = matmul.Paper()
		}
		return matmul.Run(mcfg, cfg)
	case "sor":
		cfg := sor.Default()
		switch scale {
		case ScaleSmall:
			cfg.M, cfg.Iters = 64, 3
		case ScaleMedium:
			cfg.M, cfg.Iters = 256, 8
		case ScalePaper:
			cfg = sor.Paper()
		}
		cfg.PlantRace = PlantRace
		return sor.Run(mcfg, cfg)
	case "cholesky":
		cfg := cholesky.Default()
		switch scale {
		case ScaleSmall:
			cfg.N, cfg.Band = 48, 8
		case ScaleMedium:
			cfg.N, cfg.Band = 320, 32
		case ScalePaper:
			cfg = cholesky.Paper()
		}
		return cholesky.Run(mcfg, cfg)
	case "churn":
		cfg := churnConfig(scale)
		if JoinSpec != "" {
			joins, err := member.ParseSchedule(JoinSpec)
			if err != nil {
				return apps.Result{}, fmt.Errorf("bench: -join: %w", err)
			}
			cfg.Joins = joins
		}
		if DrainSpec != "" {
			drains, err := member.ParseSchedule(DrainSpec)
			if err != nil {
				return apps.Result{}, fmt.Errorf("bench: -drain: %w", err)
			}
			cfg.Drains = drains
		}
		return churn.Run(mcfg, cfg)
	case "skew":
		return skew.Run(mcfg, skewConfig(scale))
	}
	return apps.Result{}, fmt.Errorf("bench: unknown application %q", name)
}

// Evaluation holds the results of running the application suite under a
// set of strategies — the raw material for every table and figure.
type Evaluation struct {
	Procs int
	Scale Scale
	// Results maps application name → strategy name → result.
	Results map[string]map[string]apps.Result
	// Standalone maps application name → the uninstrumented single-node
	// result (Figure 2's third bar).
	Standalone map[string]apps.Result
}

// strategyKey names a strategy for the Results map.
func strategyKey(s midway.Strategy) string { return s.String() }

// evalCell names one independent run of the evaluation grid: an
// application under a strategy, or its standalone baseline.
type evalCell struct {
	app        string
	strat      midway.Strategy
	standalone bool
}

// RunEvaluation executes every application under every given strategy at
// the given processor count, plus a standalone single-processor run per
// application when withStandalone is set.  Cells run on a pool of workers
// goroutines (<= 0 selects DefaultWorkers); results are folded back in
// grid order, so the evaluation is identical whatever the interleaving.
func RunEvaluation(procs int, scale Scale, strategies []midway.Strategy, withStandalone bool, workers int) (*Evaluation, error) {
	ev := &Evaluation{
		Procs:      procs,
		Scale:      scale,
		Results:    make(map[string]map[string]apps.Result),
		Standalone: make(map[string]apps.Result),
	}
	var cells []evalCell
	for _, app := range AppNames {
		ev.Results[app] = make(map[string]apps.Result)
		for _, st := range strategies {
			cells = append(cells, evalCell{app: app, strat: st})
		}
		if withStandalone {
			cells = append(cells, evalCell{app: app, standalone: true})
		}
	}
	results := make([]apps.Result, len(cells))
	err := forEachCell(workers, len(cells), func(i int) error {
		c := cells[i]
		if c.standalone {
			res, err := RunApp(c.app, midway.Config{Nodes: 1, Strategy: midway.Standalone}, scale)
			if err != nil {
				return fmt.Errorf("bench: %s standalone: %w", c.app, err)
			}
			results[i] = res
			return nil
		}
		res, err := RunApp(c.app, midway.Config{Nodes: procs, Strategy: c.strat}, scale)
		if err != nil {
			return fmt.Errorf("bench: %s under %v: %w", c.app, c.strat, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		if c.standalone {
			ev.Standalone[c.app] = results[i]
		} else {
			ev.Results[c.app][strategyKey(c.strat)] = results[i]
		}
	}
	return ev, nil
}

// RT and VM result accessors (most tables need exactly these two).

// RT returns the RT-DSM result for an application.
func (ev *Evaluation) RT(app string) apps.Result { return ev.Results[app]["RT-DSM"] }

// VM returns the VM-DSM result for an application.
func (ev *Evaluation) VM(app string) apps.Result { return ev.Results[app]["VM-DSM"] }
