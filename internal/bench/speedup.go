package bench

import (
	"fmt"
	"io"

	"midway"
)

// SpeedupRow holds one application's scaling curve under one strategy:
// simulated execution time at each processor count, normalized against
// the standalone (uninstrumented single-processor) run.
type SpeedupRow struct {
	App    string
	System string
	// Procs and Seconds are parallel slices: Seconds[i] is the simulated
	// time at Procs[i] processors.
	Procs   []int
	Seconds []float64
	// StandaloneSecs is the uninstrumented baseline.
	StandaloneSecs float64
}

// Speedup returns the baseline-relative speedup at index i.
func (r SpeedupRow) Speedup(i int) float64 {
	if r.Seconds[i] <= 0 {
		return 0
	}
	return r.StandaloneSecs / r.Seconds[i]
}

// SpeedupCurves measures the scaling of every application under the given
// strategies across the processor counts, an extension of the paper's
// 8-processor Figure 2 (their cluster had exactly eight DECstations).
func SpeedupCurves(procCounts []int, strategies []midway.Strategy, scale Scale) ([]SpeedupRow, error) {
	var rows []SpeedupRow
	for _, app := range AppNames {
		sa, err := RunApp(app, midway.Config{Nodes: 1, Strategy: midway.Standalone}, scale)
		if err != nil {
			return nil, fmt.Errorf("bench: %s standalone: %w", app, err)
		}
		for _, strat := range strategies {
			row := SpeedupRow{
				App:            app,
				System:         strat.String(),
				StandaloneSecs: sa.Seconds,
			}
			for _, procs := range procCounts {
				res, err := RunApp(app, midway.Config{Nodes: procs, Strategy: strat}, scale)
				if err != nil {
					return nil, fmt.Errorf("bench: %s %v %dp: %w", app, strat, procs, err)
				}
				row.Procs = append(row.Procs, procs)
				row.Seconds = append(row.Seconds, res.Seconds)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FprintSpeedup renders the scaling curves.
func FprintSpeedup(w io.Writer, rows []SpeedupRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintln(w, "Scaling: simulated time (s) and speedup over the standalone baseline")
	tw := newTabWriter(w)
	fmt.Fprint(tw, "Application\tSystem\tstandalone")
	for _, p := range rows[0].Procs {
		fmt.Fprintf(tw, "\t%dp", p)
	}
	fmt.Fprintln(tw)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2fs", r.App, r.System, r.StandaloneSecs)
		for i := range r.Procs {
			fmt.Fprintf(tw, "\t%.2fs (%.1fx)", r.Seconds[i], r.Speedup(i))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
