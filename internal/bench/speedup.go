package bench

import (
	"fmt"
	"io"

	"midway"
	"midway/internal/apps"
)

// SpeedupRow holds one application's scaling curve under one strategy:
// simulated execution time at each processor count, normalized against
// the standalone (uninstrumented single-processor) run.
type SpeedupRow struct {
	App    string
	System string
	// Procs and Seconds are parallel slices: Seconds[i] is the simulated
	// time at Procs[i] processors.
	Procs   []int
	Seconds []float64
	// StandaloneSecs is the uninstrumented baseline.
	StandaloneSecs float64
}

// Speedup returns the baseline-relative speedup at index i.
func (r SpeedupRow) Speedup(i int) float64 {
	if r.Seconds[i] <= 0 {
		return 0
	}
	return r.StandaloneSecs / r.Seconds[i]
}

// SpeedupCurves measures the scaling of every application under the given
// strategies across the processor counts, an extension of the paper's
// 8-processor Figure 2 (their cluster had exactly eight DECstations).
func SpeedupCurves(procCounts []int, strategies []midway.Strategy, scale Scale, workers int) ([]SpeedupRow, error) {
	// One cell per run: the standalone baseline per application, then every
	// strategy × processor-count point.  Cells execute on the workers pool
	// and land in index-addressed slots, so row assembly below is identical
	// whatever the interleaving.
	type cell struct {
		app   string
		strat midway.Strategy
		procs int // 0 marks the standalone baseline
	}
	var cells []cell
	for _, app := range AppNames {
		cells = append(cells, cell{app: app})
		for _, strat := range strategies {
			for _, procs := range procCounts {
				cells = append(cells, cell{app: app, strat: strat, procs: procs})
			}
		}
	}
	results := make([]apps.Result, len(cells))
	err := forEachCell(workers, len(cells), func(i int) error {
		c := cells[i]
		if c.procs == 0 {
			res, err := RunApp(c.app, midway.Config{Nodes: 1, Strategy: midway.Standalone}, scale)
			if err != nil {
				return fmt.Errorf("bench: %s standalone: %w", c.app, err)
			}
			results[i] = res
			return nil
		}
		res, err := RunApp(c.app, midway.Config{Nodes: c.procs, Strategy: c.strat}, scale)
		if err != nil {
			return fmt.Errorf("bench: %s %v %dp: %w", c.app, c.strat, c.procs, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []SpeedupRow
	i := 0
	for range AppNames {
		sa := results[i]
		base := cells[i]
		i++
		for range strategies {
			row := SpeedupRow{
				App:            base.app,
				System:         cells[i].strat.String(),
				StandaloneSecs: sa.Seconds,
			}
			for range procCounts {
				row.Procs = append(row.Procs, cells[i].procs)
				row.Seconds = append(row.Seconds, results[i].Seconds)
				i++
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FprintSpeedup renders the scaling curves.
func FprintSpeedup(w io.Writer, rows []SpeedupRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintln(w, "Scaling: simulated time (s) and speedup over the standalone baseline")
	tw := newTabWriter(w)
	fmt.Fprint(tw, "Application\tSystem\tstandalone")
	for _, p := range rows[0].Procs {
		fmt.Fprintf(tw, "\t%dp", p)
	}
	fmt.Fprintln(tw)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2fs", r.App, r.System, r.StandaloneSecs)
		for i := range r.Procs {
			fmt.Fprintf(tw, "\t%.2fs (%.1fx)", r.Seconds[i], r.Speedup(i))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
