package bench

import (
	"fmt"
	"io"

	"midway"
	"midway/internal/cost"
)

// Figure2Row holds one application's overall performance comparison.
type Figure2Row struct {
	App string
	// StandaloneSecs is the uninstrumented single-processor time.
	StandaloneSecs float64
	// RTSecs / VMSecs are the parallel execution times.
	RTSecs, VMSecs float64
	// RTMB / VMMB are total application data transferred, in MB.
	RTMB, VMMB float64
}

// Figure2 computes the overall execution time and data transferred
// comparison (the paper's Figure 2).
func Figure2(ev *Evaluation) []Figure2Row {
	rows := make([]Figure2Row, 0, len(AppNames))
	for _, app := range AppNames {
		r := Figure2Row{
			App:    app,
			RTSecs: ev.RT(app).Seconds,
			VMSecs: ev.VM(app).Seconds,
			RTMB:   ev.RT(app).KBTransferredTotal() / 1024,
			VMMB:   ev.VM(app).KBTransferredTotal() / 1024,
		}
		if sa, ok := ev.Standalone[app]; ok {
			r.StandaloneSecs = sa.Seconds
		}
		rows = append(rows, r)
	}
	return rows
}

// FprintFigure2 renders Figure 2 as a table plus text bars.
func FprintFigure2(w io.Writer, ev *Evaluation) {
	fmt.Fprintf(w, "Figure 2: execution time (s) and data transferred (MB), %d procs, %s scale\n",
		ev.Procs, ev.Scale)
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Application\tstandalone (s)\tRT-DSM (s)\tVM-DSM (s)\tRT-DSM (MB)\tVM-DSM (MB)")
	rows := Figure2(ev)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.App, r.StandaloneSecs, r.RTSecs, r.VMSecs, r.RTMB, r.VMMB)
	}
	tw.Flush()
	fmt.Fprintln(w)
	// Text bars: execution time normalized per application.
	for _, r := range rows {
		maxSecs := max(r.RTSecs, r.VMSecs)
		if maxSecs <= 0 {
			continue
		}
		fmt.Fprintf(w, "%-10s RT %s %.2fs\n", r.App, bar(r.RTSecs/maxSecs), r.RTSecs)
		fmt.Fprintf(w, "%-10s VM %s %.2fs\n", "", bar(r.VMSecs/maxSecs), r.VMSecs)
	}
}

// bar renders a 40-column proportional text bar.
func bar(frac float64) string {
	const width = 40
	n := int(frac*width + 0.5)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	out := make([]byte, width)
	for i := range out {
		if i < n {
			out[i] = '#'
		} else {
			out[i] = ' '
		}
	}
	return string(out)
}

// FaultSweepRow holds one application's cost as the page-fault service
// time varies — one horizontal line of the paper's Figures 3 and 4.
type FaultSweepRow struct {
	App string
	// RTMillis is the fixed RT-DSM cost (the line's vertical position).
	RTMillis float64
	// VMFastMillis / VMSlowMillis are the VM-DSM costs at the 122 µs fast
	// exception and the 1200 µs Mach pager (the line's endpoints).
	VMFastMillis, VMSlowMillis float64
	// BreakEvenMicros is the page-fault service time at which the VM-DSM
	// cost equals the RT-DSM cost; the line crosses the paper's diagonal
	// there if it lies within [122, 1200].
	BreakEvenMicros float64
	// RTWins reports whether RT-DSM is cheaper even with fast exceptions
	// (the whole line lies below the diagonal).
	RTWins bool
}

// faultSweep computes one figure's rows given the cost components that do
// and do not depend on the fault time.
func faultSweep(ev *Evaluation, m cost.Model, includeCollection bool) []FaultSweepRow {
	rows := make([]FaultSweepRow, 0, len(AppNames))
	for _, app := range AppNames {
		rt := ev.RT(app).Mean
		vm := ev.VM(app).Mean
		rtCycles := TrappingCyclesRT(rt, m)
		vmFixed := cost.Cycles(0)
		if includeCollection {
			rtCycles += CollectionCyclesRT(rt, m)
			vmFixed = CollectionCyclesVM(vm, m)
		}
		faults := float64(vm.WriteFaults)
		r := FaultSweepRow{
			App:          app,
			RTMillis:     cost.Millis(rtCycles),
			VMFastMillis: cost.Millis(vmFixed + vm.WriteFaults*cost.Micros(122)),
			VMSlowMillis: cost.Millis(vmFixed + vm.WriteFaults*cost.Micros(1200)),
		}
		if faults > 0 {
			r.BreakEvenMicros = (float64(rtCycles) - float64(vmFixed)) / faults / cost.CyclesPerMicrosecond
		}
		r.RTWins = r.RTMillis <= r.VMFastMillis
		rows = append(rows, r)
	}
	return rows
}

// Figure3 computes the effect of varying page-fault cost on write trapping
// (the paper's Figure 3).
func Figure3(ev *Evaluation, m cost.Model) []FaultSweepRow {
	return faultSweep(ev, m, false)
}

// Figure4 computes the effect of varying page-fault cost on the total cost
// of write detection, trapping plus collection (the paper's Figure 4).
func Figure4(ev *Evaluation, m cost.Model) []FaultSweepRow {
	return faultSweep(ev, m, true)
}

// fprintSweep renders a fault sweep figure.
func fprintSweep(w io.Writer, title string, rows []FaultSweepRow) {
	fmt.Fprintln(w, title)
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Application\tRT (ms)\tVM @122µs (ms)\tVM @1200µs (ms)\tbreak-even fault (µs)\tverdict")
	for _, r := range rows {
		verdict := "RT wins even with fast exceptions"
		switch {
		case r.BreakEvenMicros >= 122 && r.BreakEvenMicros <= 1200:
			verdict = "crosses break-even in sweep range"
		case !r.RTWins:
			verdict = "VM wins across sweep"
		}
		be := "-"
		if r.BreakEvenMicros > 0 {
			be = fmt.Sprintf("%.0f", r.BreakEvenMicros)
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%s\t%s\n",
			r.App, r.RTMillis, r.VMFastMillis, r.VMSlowMillis, be, verdict)
	}
	tw.Flush()
}

// FprintFigure3 renders Figure 3.
func FprintFigure3(w io.Writer, ev *Evaluation, m cost.Model) {
	fprintSweep(w, "Figure 3: write trapping cost vs page fault cost (per-processor ms)", Figure3(ev, m))
}

// FprintFigure4 renders Figure 4.
func FprintFigure4(w io.Writer, ev *Evaluation, m cost.Model) {
	fprintSweep(w, "Figure 4: total write detection cost vs page fault cost (per-processor ms)", Figure4(ev, m))
}

// UniprocessorRow holds the Section 4 uniprocessor comparison for one
// application: the full write-detection cost with no communication.
type UniprocessorRow struct {
	App                            string
	RTSecs, VMSecs, StandaloneSecs float64
}

// Uniprocessor runs an application on one processor under RT, VM and
// standalone configurations, reproducing the paper's water discussion
// (110.1 / 109.1 / 104.2 seconds: RT pays full trapping, VM pays one fault
// per page and never diffs, standalone pays nothing).
func Uniprocessor(app string, scale Scale) (UniprocessorRow, error) {
	row := UniprocessorRow{App: app}
	rt, err := RunApp(app, midway.Config{Nodes: 1, Strategy: midway.RT}, scale)
	if err != nil {
		return row, err
	}
	vm, err := RunApp(app, midway.Config{Nodes: 1, Strategy: midway.VM}, scale)
	if err != nil {
		return row, err
	}
	sa, err := RunApp(app, midway.Config{Nodes: 1, Strategy: midway.Standalone}, scale)
	if err != nil {
		return row, err
	}
	row.RTSecs, row.VMSecs, row.StandaloneSecs = rt.Seconds, vm.Seconds, sa.Seconds
	return row, nil
}

// UniprocessorRows runs the uniprocessor comparison for every application,
// one cell per application × configuration on a pool of workers goroutines
// (<= 0 selects DefaultWorkers).
func UniprocessorRows(scale Scale, workers int) ([]UniprocessorRow, error) {
	strats := []midway.Strategy{midway.RT, midway.VM, midway.Standalone}
	secs := make([]float64, len(AppNames)*len(strats))
	err := forEachCell(workers, len(secs), func(i int) error {
		app, st := AppNames[i/len(strats)], strats[i%len(strats)]
		res, err := RunApp(app, midway.Config{Nodes: 1, Strategy: st}, scale)
		if err != nil {
			return fmt.Errorf("uniprocessor %s: %w", app, err)
		}
		secs[i] = res.Seconds
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]UniprocessorRow, 0, len(AppNames))
	for i, app := range AppNames {
		rows = append(rows, UniprocessorRow{
			App:            app,
			RTSecs:         secs[len(strats)*i],
			VMSecs:         secs[len(strats)*i+1],
			StandaloneSecs: secs[len(strats)*i+2],
		})
	}
	return rows, nil
}

// FprintUniprocessor renders the uniprocessor comparison.
func FprintUniprocessor(w io.Writer, rows []UniprocessorRow) {
	fmt.Fprintln(w, "Uniprocessor execution time (s): RT pays full trapping, VM one fault per page, standalone nothing")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Application\tRT-DSM\tVM-DSM\tstandalone")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\n", r.App, r.RTSecs, r.VMSecs, r.StandaloneSecs)
	}
	tw.Flush()
}

// AblationRow compares all four strategies on one application.
type AblationRow struct {
	App     string
	Seconds map[string]float64
	MB      map[string]float64
}

// Ablation computes the Section 3.5 design-space comparison: RT and VM
// against the Blast (no detection, ship everything) and TwinDiff (no
// detection, twin and diff everything) alternatives.
func Ablation(ev *Evaluation) []AblationRow {
	rows := make([]AblationRow, 0, len(AppNames))
	for _, app := range AppNames {
		r := AblationRow{App: app, Seconds: map[string]float64{}, MB: map[string]float64{}}
		for strat, res := range ev.Results[app] {
			r.Seconds[strat] = res.Seconds
			r.MB[strat] = res.KBTransferredTotal() / 1024
		}
		rows = append(rows, r)
	}
	return rows
}

// FprintAblation renders the ablation comparison.
func FprintAblation(w io.Writer, ev *Evaluation) {
	fmt.Fprintf(w, "Section 3.5 ablation: all strategies, %d procs, %s scale\n", ev.Procs, ev.Scale)
	strats := []string{"RT-DSM", "VM-DSM", "Blast", "TwinDiff"}
	tw := newTabWriter(w)
	fmt.Fprint(tw, "Application")
	for _, s := range strats {
		fmt.Fprintf(tw, "\t%s (s)\t%s (MB)", s, s)
	}
	fmt.Fprintln(tw)
	for _, r := range Ablation(ev) {
		fmt.Fprintf(tw, "%s", r.App)
		for _, s := range strats {
			fmt.Fprintf(tw, "\t%.2f\t%.2f", r.Seconds[s], r.MB[s])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
