package bench

import (
	"fmt"
	"testing"

	"midway"
)

// TestAppsOverTCP runs representative applications through real loopback
// sockets, checking that the wire protocol carries the full workloads.
func TestAppsOverTCP(t *testing.T) {
	for _, app := range []string{"sor", "quicksort", "cholesky"} {
		for _, strat := range []midway.Strategy{midway.RT, midway.VM} {
			t.Run(fmt.Sprintf("%s/%v", app, strat), func(t *testing.T) {
				res, err := RunApp(app, midway.Config{
					Nodes:    4,
					Strategy: strat,
					UseTCP:   true,
				}, ScaleSmall)
				if err != nil {
					t.Fatal(err)
				}
				if res.Total.Messages == 0 {
					t.Error("no protocol messages sent")
				}
			})
		}
	}
}

// TestOddProcessorCounts exercises the partitioning edge cases: processor
// counts that do not divide the problem sizes, including counts larger
// than some partitions can fill.
func TestOddProcessorCounts(t *testing.T) {
	for _, app := range AppNames {
		for _, procs := range []int{3, 5, 7} {
			t.Run(fmt.Sprintf("%s/%dp", app, procs), func(t *testing.T) {
				if _, err := RunApp(app, midway.Config{Nodes: procs, Strategy: midway.RT}, ScaleSmall); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestEagerMatchesLazy: the eager and lazy dirtybit schemes must produce
// identical application results (they differ only in when timestamps are
// assigned).
func TestEagerMatchesLazy(t *testing.T) {
	for _, app := range AppNames {
		t.Run(app, func(t *testing.T) {
			lazy, err := RunApp(app, midway.Config{Nodes: 4, Strategy: midway.RT}, ScaleSmall)
			if err != nil {
				t.Fatal(err)
			}
			eager, err := RunApp(app, midway.Config{
				Nodes: 4, Strategy: midway.RT, EagerTimestamps: true,
			}, ScaleSmall)
			if err != nil {
				t.Fatal(err)
			}
			diff := lazy.Checksum - eager.Checksum
			if diff < 0 {
				diff = -diff
			}
			scale := lazy.Checksum
			if scale < 0 {
				scale = -scale
			}
			if diff > 1e-6*(1+scale) {
				t.Errorf("checksums differ: lazy %g vs eager %g", lazy.Checksum, eager.Checksum)
			}
			// Trapping counts are identical: the schemes set the same
			// dirtybits, only the stored value differs.
			if lazy.Total.DirtybitsSet != eager.Total.DirtybitsSet {
				t.Errorf("dirtybits set differ: lazy %d vs eager %d",
					lazy.Total.DirtybitsSet, eager.Total.DirtybitsSet)
			}
		})
	}
}
