package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the default experiment-cell concurrency: GOMAXPROCS.
// The CLIs use it as their -workers default; grid functions substitute it
// for a non-positive workers argument.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// forEachCell runs fn(i) for every i in [0, n) on at most workers
// goroutines (workers <= 0 selects DefaultWorkers).  Every cell builds an
// independent System over an in-process network, so cells share no mutable
// state and the suite parallelizes trivially.  Callers must write results
// into preallocated, index-addressed slots so that output ordering is
// independent of goroutine scheduling.  The returned error is the one from
// the lowest-numbered failing cell, so error selection is deterministic
// too.  With workers == 1 the cells run serially in order and the first
// error aborts the remaining cells, exactly like the old serial loops.
func forEachCell(workers, n int, fn func(i int) error) error {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
