package bench

import (
	"strings"
	"sync"
	"testing"

	"midway"
	"midway/internal/cost"
)

// smallEval runs the RT+VM evaluation once at small scale and caches it
// for all tests in this package.
var (
	evalOnce sync.Once
	evalVal  *Evaluation
	evalErr  error
)

func smallEval(t *testing.T) *Evaluation {
	t.Helper()
	evalOnce.Do(func() {
		evalVal, evalErr = RunEvaluation(8, ScaleSmall,
			[]midway.Strategy{midway.RT, midway.VM}, true, 0)
	})
	if evalErr != nil {
		t.Fatal(evalErr)
	}
	return evalVal
}

func TestParseScale(t *testing.T) {
	for name, want := range map[string]Scale{
		"small": ScaleSmall, "medium": ScaleMedium, "paper": ScalePaper, "": ScaleMedium,
	} {
		got, err := ParseScale(name)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseScale("giant"); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestRunAppUnknown(t *testing.T) {
	if _, err := RunApp("tetris", midway.Config{Nodes: 1, Strategy: midway.RT}, ScaleSmall); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestEvaluationComplete(t *testing.T) {
	ev := smallEval(t)
	for _, app := range AppNames {
		rt, vm := ev.RT(app), ev.VM(app)
		if rt.Seconds <= 0 || vm.Seconds <= 0 {
			t.Errorf("%s: missing execution times", app)
		}
		if rt.Checksum != vm.Checksum {
			// water and cholesky tolerate tiny reassociation noise, so
			// compare loosely.
			diff := rt.Checksum - vm.Checksum
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-6*(1+abs(rt.Checksum)) {
				t.Errorf("%s: checksums differ across strategies: %g vs %g",
					app, rt.Checksum, vm.Checksum)
			}
		}
		sa, ok := ev.Standalone[app]
		if !ok || sa.Seconds <= 0 {
			t.Errorf("%s: missing standalone result", app)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestShapeCriteria asserts the robust parts of the paper's qualitative
// results at small scale.
func TestShapeCriteria(t *testing.T) {
	ev := smallEval(t)

	// RT detects with dirtybits, VM with faults, everywhere.  (Totals,
	// not means: per-processor means round small counts down to zero.)
	for _, app := range AppNames {
		if ev.RT(app).Total.DirtybitsSet == 0 {
			t.Errorf("%s: RT set no dirtybits", app)
		}
		if ev.RT(app).Total.WriteFaults != 0 {
			t.Errorf("%s: RT took faults", app)
		}
		if ev.VM(app).Total.WriteFaults == 0 {
			t.Errorf("%s: VM took no faults", app)
		}
		if ev.VM(app).Total.DirtybitsSet != 0 {
			t.Errorf("%s: VM set dirtybits", app)
		}
	}

	// The medium/fine-grained applications transmit no more data under RT
	// than under VM (the exact-history property).
	for _, app := range []string{"water", "sor", "cholesky"} {
		if rt, vm := ev.RT(app).Total.BytesTransferred, ev.VM(app).Total.BytesTransferred; rt > vm+vm/10 {
			t.Errorf("%s: RT transferred more data than VM: %d vs %d", app, rt, vm)
		}
	}

	// Matrix-multiply is VM's best case: faults stay tiny relative to
	// RT's per-write dirtybit sets.
	mm := ev.Results["matrix"]
	if f, s := mm["VM-DSM"].Total.WriteFaults, mm["RT-DSM"].Total.DirtybitsSet; f*100 > s {
		t.Errorf("matrix: faults (%d) not amortized against dirtybit sets (%d)", f, s)
	}
}

func TestTable3Computation(t *testing.T) {
	ev := smallEval(t)
	m := cost.Default()
	rows := Table3(ev, m)
	if len(rows) != len(AppNames) {
		t.Fatalf("Table3 has %d rows", len(rows))
	}
	for _, r := range rows {
		if r.RTMillis < 0 || r.VMMillis < 0 {
			t.Errorf("%s: implausible trapping costs %+v", r.App, r)
		}
		// Recompute by hand for one cross-check.
		rt := ev.RT(r.App).Mean
		wantRT := cost.Millis(rt.DirtybitsSet*m.DirtybitSetDouble +
			rt.DirtybitsMisclassified*m.DirtybitSetPrivate)
		if r.RTMillis != wantRT {
			t.Errorf("%s: RT trapping %g, want %g", r.App, r.RTMillis, wantRT)
		}
	}
}

func TestTable4Computation(t *testing.T) {
	ev := smallEval(t)
	rows := Table4(ev, cost.Default())
	for _, r := range rows {
		if r.RTTotal != r.RTClean+r.RTDirty+r.RTUpdated {
			t.Errorf("%s: RT total mismatch", r.App)
		}
		if r.VMTotal != r.VMDiffed+r.VMProtected+r.VMTwins {
			t.Errorf("%s: VM total mismatch", r.App)
		}
	}
}

func TestTable5Formulas(t *testing.T) {
	ev := smallEval(t)
	for _, r := range Table5(ev) {
		vm := ev.VM(r.App).Mean
		// Faults read a page and write the twin: 2 KW per fault.
		if want := vm.WriteFaults * 2 * 1024 / 1000; r.VMTrap != want {
			t.Errorf("%s: VM trap refs %d, want %d", r.App, r.VMTrap, want)
		}
		if r.RTTotal != r.RTTrap+r.RTColl || r.VMTotal != r.VMTrap+r.VMColl {
			t.Errorf("%s: totals inconsistent", r.App)
		}
	}
}

func TestFigureSweeps(t *testing.T) {
	ev := smallEval(t)
	m := cost.Default()
	for _, rows := range [][]FaultSweepRow{Figure3(ev, m), Figure4(ev, m)} {
		if len(rows) != len(AppNames) {
			t.Fatalf("sweep has %d rows", len(rows))
		}
		for _, r := range rows {
			// The line's endpoints are ordered: more expensive faults
			// cannot make VM cheaper.
			if r.VMSlowMillis < r.VMFastMillis {
				t.Errorf("%s: sweep endpoints inverted", r.App)
			}
			// Figure 4's VM costs include collection, so they dominate
			// Figure 3's at equal fault cost (checked via Figure4 below).
		}
	}
	f3, f4 := Figure3(ev, m), Figure4(ev, m)
	for i := range f3 {
		if f4[i].VMFastMillis < f3[i].VMFastMillis || f4[i].RTMillis < f3[i].RTMillis {
			t.Errorf("%s: totals below trapping-only costs", f3[i].App)
		}
	}
}

func TestRenderers(t *testing.T) {
	ev := smallEval(t)
	m := cost.Default()
	var sb strings.Builder
	FprintTable1(&sb, m)
	FprintFigure2(&sb, ev)
	FprintTable2(&sb, ev)
	FprintTable3(&sb, ev, m)
	FprintFigure3(&sb, ev, m)
	FprintTable4(&sb, ev, m)
	FprintFigure4(&sb, ev, m)
	FprintTable5(&sb, ev)
	FprintAblation(&sb, ev)
	out := sb.String()
	for _, app := range AppNames {
		if !strings.Contains(out, app) {
			t.Errorf("rendered output missing %q", app)
		}
	}
	for _, marker := range []string{"Table 2", "Table 3", "Table 4", "Table 5", "Figure 2", "Figure 3", "Figure 4", "dirtybits set", "write faults", "break-even"} {
		if !strings.Contains(out, marker) {
			t.Errorf("rendered output missing %q", marker)
		}
	}
}

func TestFprintUniprocessor(t *testing.T) {
	var sb strings.Builder
	FprintUniprocessor(&sb, []UniprocessorRow{
		{App: "water", RTSecs: 1.1, VMSecs: 1.05, StandaloneSecs: 1.0},
	})
	if !strings.Contains(sb.String(), "water") {
		t.Error("renderer dropped the row")
	}
}

func TestScaleString(t *testing.T) {
	for s, want := range map[Scale]string{
		ScaleSmall: "small", ScaleMedium: "medium", ScalePaper: "paper",
	} {
		if s.String() != want {
			t.Errorf("Scale(%d).String() = %q", s, s.String())
		}
	}
}

func TestUniprocessorOrdering(t *testing.T) {
	// Quicksort shows the clearest uniprocessor contrast: RT pays
	// trapping on every write, VM one fault per page, standalone nothing.
	row, err := Uniprocessor("quicksort", ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if row.RTSecs < row.StandaloneSecs {
		t.Errorf("RT uniprocessor (%g) faster than standalone (%g)", row.RTSecs, row.StandaloneSecs)
	}
	if row.VMSecs < row.StandaloneSecs {
		t.Errorf("VM uniprocessor (%g) faster than standalone (%g)", row.VMSecs, row.StandaloneSecs)
	}
}
