package bench

import (
	"reflect"
	"strings"
	"testing"
)

// TestRunScalingDeterministicCells: the scaling grid's simulated columns
// are engine-independent (both grid apps are deterministic under either
// engine) and reproducible run to run; the renderer carries every cell.
func TestRunScalingDeterministicCells(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling grid runs 64-256 node topologies")
	}
	cells, err := RunScaling(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(scalingGrid())*len(ScalingScheds) {
		t.Fatalf("%d cells, want %d", len(cells), len(scalingGrid())*len(ScalingScheds))
	}
	// Cells come in (goroutine, lockstep) pairs per grid point: the
	// simulated half must not move across the engine axis.
	for i := 0; i < len(cells); i += 2 {
		g, l := cells[i], cells[i+1]
		if g.App != l.App || g.Procs != l.Procs {
			t.Fatalf("cell pairing broke at %d: %+v vs %+v", i, g, l)
		}
		if g.SimSeconds != l.SimSeconds || g.Checksum != l.Checksum || g.Messages != l.Messages {
			t.Errorf("%s %dp: simulated stats moved across engines:\ngoroutine: %+v\nlockstep:  %+v",
				g.App, g.Procs, g, l)
		}
		if g.NodeCyclesPerSec <= 0 || l.NodeCyclesPerSec <= 0 {
			t.Errorf("%s %dp: non-positive simulation rate", g.App, g.Procs)
		}
	}
	var sb strings.Builder
	FprintScaling(&sb, cells)
	for _, want := range []string{"sor", "quicksort", "lockstep", "goroutine", "Mcycles/s"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("renderer missing %q", want)
		}
	}
}

// TestLockstepReportStability: the full report grid — all five
// applications under every strategy — run twice under the lockstep
// engine yields byte-identical simulated cells.  This is the
// TestCombineAblation-style stability check PR 4 could only make for
// quicksort, extended to the whole suite.
func TestLockstepReportStability(t *testing.T) {
	defer func(s string, n int) { Sched, SchedThreads = s, n }(Sched, SchedThreads)
	Sched, SchedThreads = "lockstep", 0
	first, err := RunReport(4, ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunReport(4, ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Simulated, second.Simulated) {
		t.Errorf("simulated cells differ between identical lockstep report runs:\nfirst:  %+v\nsecond: %+v",
			first.Simulated, second.Simulated)
	}
	if first.Sched != "lockstep" {
		t.Errorf("report sched = %q, want lockstep", first.Sched)
	}
}
