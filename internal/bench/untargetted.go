package bench

import (
	"fmt"
	"io"

	"midway"
	"midway/internal/apps"
	"midway/internal/cost"
	"midway/internal/untargetted"
)

// UntargettedRow compares the Section 3.5 dirtybit organizations at one
// dirty fraction: per-synchronization trapping plus collection cost, in
// microseconds, for a fixed amount of cached shared data.
type UntargettedRow struct {
	// DirtyFraction is the fraction of lines written between
	// synchronization points.
	DirtyFraction float64
	// Sequential marks the write pattern (sequential runs vs random).
	Sequential bool
	// Micros maps scheme name to total (trap+collect) microseconds.
	Micros map[string]float64
}

// UntargettedSweep measures flat dirtybits, the update queue, and
// two-level dirtybits across dirty fractions, for an untargetted model
// where every synchronization scans all cached data.  lines is the number
// of cached shared lines (the paper's example: every line cached in the
// processor's local memory).
func UntargettedSweep(lines int, seed int64) []UntargettedRow {
	m := cost.Default()
	fractions := []float64{0.001, 0.01, 0.05, 0.1, 0.25, 0.5}
	var rows []UntargettedRow
	for _, seq := range []bool{true, false} {
		for _, frac := range fractions {
			writes := writePattern(lines, frac, seq, seed)
			row := UntargettedRow{
				DirtyFraction: frac,
				Sequential:    seq,
				Micros:        make(map[string]float64),
			}
			for _, tr := range []untargetted.Tracker{
				untargetted.NewFlat(m, lines),
				untargetted.NewQueue(m, lines),
				untargetted.NewTwoLevel(m, lines, 64),
			} {
				var total cost.Cycles
				for _, w := range writes {
					total += tr.RecordWrite(w)
				}
				_, coll := tr.Collect()
				total += coll
				row.Micros[tr.Name()] = float64(total) / cost.CyclesPerMicrosecond
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// writePattern produces the write stream for one sweep point.
func writePattern(lines int, frac float64, sequential bool, seed int64) []int {
	count := int(frac * float64(lines))
	if count < 1 {
		count = 1
	}
	writes := make([]int, 0, count)
	if sequential {
		start := lines / 4
		for i := 0; i < count; i++ {
			writes = append(writes, (start+i)%lines)
		}
		return writes
	}
	rng := apps.NewRand(seed)
	for i := 0; i < count; i++ {
		writes = append(writes, rng.Intn(lines))
	}
	return writes
}

// CombineRow compares VM-DSM with and without §3.4 incarnation combining
// on one application.
type CombineRow struct {
	App                      string
	PlainSecs, CombinedSecs  float64
	PlainKB, CombinedKB      float64
	RedundancyRemovedPercent float64
}

// CombineAblation measures the §3.4 alternative the paper's Midway omits:
// combining multi-incarnation updates before replying.  Water exercises it
// hardest (small accumulators rewritten by many processors between visits).
func CombineAblation(procs int, scale Scale, workers int) ([]CombineRow, error) {
	// Two runs per application — plain VM then combined — flattened into
	// one cell grid for the workers pool.
	results := make([]apps.Result, 2*len(AppNames))
	err := forEachCell(workers, len(results), func(i int) error {
		cfg := midway.Config{Nodes: procs, Strategy: midway.VM, CombineIncarnations: i%2 == 1}
		res, err := RunApp(AppNames[i/2], cfg, scale)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []CombineRow
	for i, app := range AppNames {
		plain, combined := results[2*i], results[2*i+1]
		r := CombineRow{
			App:          app,
			PlainSecs:    plain.Seconds,
			CombinedSecs: combined.Seconds,
			PlainKB:      plain.KBTransferredTotal(),
			CombinedKB:   combined.KBTransferredTotal(),
		}
		if r.PlainKB > 0 {
			r.RedundancyRemovedPercent = 100 * (r.PlainKB - r.CombinedKB) / r.PlainKB
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// FprintCombine renders the combining ablation.
func FprintCombine(w io.Writer, rows []CombineRow) {
	fmt.Fprintln(w, "Incarnation-combining ablation (§3.4): VM-DSM with updates sent in their")
	fmt.Fprintln(w, "entirety (the paper's Midway) vs combined to the newest incarnation")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Application\tplain (s)\tcombined (s)\tplain (KB)\tcombined (KB)\tredundancy removed")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.0f\t%.0f\t%.1f%%\n",
			r.App, r.PlainSecs, r.CombinedSecs, r.PlainKB, r.CombinedKB, r.RedundancyRemovedPercent)
	}
	tw.Flush()
}

// FprintUntargetted renders the sweep.
func FprintUntargetted(w io.Writer, lines int, rows []UntargettedRow) {
	fmt.Fprintf(w, "Untargetted-model ablation (Section 3.5): trap+collect µs per sync, %d cached lines\n", lines)
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "pattern\tdirty %\tflat dirtybits\tupdate queue\ttwo-level\tcheapest")
	for _, r := range rows {
		pattern := "random"
		if r.Sequential {
			pattern = "sequential"
		}
		flat := r.Micros["flat dirtybits"]
		queue := r.Micros["update queue"]
		twol := r.Micros["two-level dirtybits"]
		best := "flat"
		switch {
		case queue <= flat && queue <= twol:
			best = "queue"
		case twol <= flat && twol <= queue:
			best = "two-level"
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.0f\t%.0f\t%.0f\t%s\n",
			pattern, 100*r.DirtyFraction, flat, queue, twol, best)
	}
	tw.Flush()
	fmt.Fprintln(w, "(flat scan cost tracks shared data; queue tracks dirty data at 3x trap cost;")
	fmt.Fprintln(w, " two-level adds ~10% trap cost and skips clean blocks)")
}
