package bench

import (
	"fmt"
	"io"

	"midway"
	"midway/internal/apps"
)

// HybridRow holds one application's cross-scheme comparison: the Figure-2
// pair of metrics (execution time, data moved) under RT-DSM, VM-DSM and
// the Hybrid scheme, plus the uninstrumented standalone time.
type HybridRow struct {
	App            string
	StandaloneSecs float64
	RTSecs         float64
	VMSecs         float64
	HybridSecs     float64
	RTMB           float64
	VMMB           float64
	HybridMB       float64
}

// HybridComparison runs every application under RT-DSM, VM-DSM and the
// named registry scheme (normally "hybrid"), plus an uninstrumented
// single-processor run, and reports the Figure-2 metrics for each.  The
// point of the experiment: neither RT nor VM dominates across the suite
// (the paper's Figure 2), so a per-region dispatch should track whichever
// mechanism suits each application's sharing granularity.
func HybridComparison(procs int, scale Scale, scheme string, workers int) ([]HybridRow, error) {
	hcfg := midway.Config{Nodes: procs, Scheme: scheme}
	// Keep the Strategy field (and the result's System label) accurate
	// when the scheme name is also a strategy name.
	if st, perr := midway.ParseStrategy(scheme); perr == nil {
		hcfg.Strategy = st
	}
	// Four runs per application, flattened into one cell grid for the
	// workers pool; rows are assembled in application order afterwards.
	const perApp = 4
	cfgs := []midway.Config{
		{Nodes: procs, Strategy: midway.RT},
		{Nodes: procs, Strategy: midway.VM},
		hcfg,
		{Nodes: 1, Strategy: midway.Standalone},
	}
	labels := []string{"under RT", "under VM", fmt.Sprintf("under scheme %q", scheme), "standalone"}
	results := make([]apps.Result, perApp*len(AppNames))
	err := forEachCell(workers, len(results), func(i int) error {
		app, k := AppNames[i/perApp], i%perApp
		res, err := RunApp(app, cfgs[k], scale)
		if err != nil {
			return fmt.Errorf("bench: %s %s: %w", app, labels[k], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]HybridRow, 0, len(AppNames))
	for i, app := range AppNames {
		rt, vm, hy, sa := results[perApp*i], results[perApp*i+1], results[perApp*i+2], results[perApp*i+3]
		rows = append(rows, HybridRow{
			App:            app,
			StandaloneSecs: sa.Seconds,
			RTSecs:         rt.Seconds,
			VMSecs:         vm.Seconds,
			HybridSecs:     hy.Seconds,
			RTMB:           rt.KBTransferredTotal() / 1024,
			VMMB:           vm.KBTransferredTotal() / 1024,
			HybridMB:       hy.KBTransferredTotal() / 1024,
		})
	}
	return rows, nil
}

// FprintHybrid renders the hybrid comparison, Figure-2 style.
func FprintHybrid(w io.Writer, procs int, scale Scale, scheme string, rows []HybridRow) {
	fmt.Fprintf(w, "Hybrid evaluation: execution time (s) and data transferred (MB), %d procs, %s scale, scheme %q\n",
		procs, scale, scheme)
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Application\tstandalone (s)\tRT-DSM (s)\tVM-DSM (s)\tHybrid (s)\tRT-DSM (MB)\tVM-DSM (MB)\tHybrid (MB)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.App, r.StandaloneSecs, r.RTSecs, r.VMSecs, r.HybridSecs, r.RTMB, r.VMMB, r.HybridMB)
	}
	tw.Flush()
	fmt.Fprintln(w)
	for _, r := range rows {
		maxSecs := max(r.RTSecs, r.VMSecs, r.HybridSecs)
		if maxSecs <= 0 {
			continue
		}
		fmt.Fprintf(w, "%-10s RT %s %.2fs\n", r.App, bar(r.RTSecs/maxSecs), r.RTSecs)
		fmt.Fprintf(w, "%-10s VM %s %.2fs\n", "", bar(r.VMSecs/maxSecs), r.VMSecs)
		fmt.Fprintf(w, "%-10s HY %s %.2fs\n", "", bar(r.HybridSecs/maxSecs), r.HybridSecs)
	}
}
