package bench

import (
	"fmt"
	"io"
	"time"

	"midway"
	"midway/internal/apps"
	"midway/internal/cost"
)

// ScaleCell is one large-topology engine-comparison measurement: an
// application at a 64-256 node count under one execution engine.  The
// simulated columns (SimSeconds, Checksum, Messages) are host-independent
// and — under the lockstep engine — byte-identical at any GOMAXPROCS, so
// CI diffs them; the wall-clock columns track how fast this implementation
// simulates large topologies.
type ScaleCell struct {
	App        string  `json:"app"`
	System     string  `json:"system"`
	Procs      int     `json:"procs"`
	Sched      string  `json:"sched"`
	SimSeconds float64 `json:"sim_seconds"`
	Checksum   float64 `json:"checksum"`
	Messages   uint64  `json:"messages"`
	// WallMS is the harness wall-clock for the cell; NodeCyclesPerSec is
	// the simulation rate it implies — simulated node-cycles executed per
	// wall-second (procs × simulated cycles / wall time), the figure of
	// merit for a parallel simulation core.
	WallMS           float64 `json:"wall_ms"`
	NodeCyclesPerSec float64 `json:"node_cycles_per_sec"`
}

// scalingGrid lists the topology points: sor (barrier-structured, dense
// neighbor exchange) up to its medium-scale row limit, quicksort (lock and
// task-queue traffic) through 256 nodes.  Every point runs under both
// engines so the report carries the speedup evidence.
func scalingGrid() []struct {
	app   string
	procs int
} {
	return []struct {
		app   string
		procs int
	}{
		{"sor", 64}, {"sor", 128},
		{"quicksort", 64}, {"quicksort", 128}, {"quicksort", 256},
	}
}

// ScalingScheds lists the engines the scaling grid compares.
var ScalingScheds = []string{"goroutine", "lockstep"}

// scalingReps is how many times each scaling cell runs; the reported
// wall is the minimum.  Large-topology cells are long enough for host
// noise (GC pauses, neighboring load) to dominate a single shot, and
// the minimum is the standard noise-robust estimator of a cell's
// attributable cost.  Simulated columns are identical across reps by
// construction.
const scalingReps = 3

// RunScaling measures the scaling grid at the given scale under both
// execution engines, serially (each cell gets the whole host, so the
// wall-clock columns are attributable and the lockstep engine may use
// every core).  The package-level Sched knob is ignored here: the grid
// itself sweeps the engine axis.
func RunScaling(scale Scale) ([]ScaleCell, error) {
	var out []ScaleCell
	for _, pt := range scalingGrid() {
		for _, sched := range ScalingScheds {
			mcfg := midway.Config{Nodes: pt.procs, Strategy: midway.RT}
			if sched == "lockstep" {
				mcfg.Sched = sched
			}
			var res apps.Result
			var wall time.Duration
			for rep := 0; rep < scalingReps; rep++ {
				t0 := time.Now()
				r, err := runApp(pt.app, mcfg, scale)
				if err != nil {
					return nil, fmt.Errorf("bench: scaling %s %dp under %s: %w", pt.app, pt.procs, sched, err)
				}
				if w := time.Since(t0); rep == 0 || w < wall {
					wall = w
				}
				res = r
			}
			simCycles := res.Seconds * cost.CyclesPerMicrosecond * 1e6
			out = append(out, ScaleCell{
				App:              pt.app,
				System:           res.System,
				Procs:            pt.procs,
				Sched:            sched,
				SimSeconds:       res.Seconds,
				Checksum:         res.Checksum,
				Messages:         res.Mean.Messages,
				WallMS:           float64(wall.Microseconds()) / 1000,
				NodeCyclesPerSec: float64(pt.procs) * simCycles / wall.Seconds(),
			})
		}
	}
	return out, nil
}

// FprintScaling renders the engine-comparison table.
func FprintScaling(w io.Writer, cells []ScaleCell) {
	fmt.Fprintln(w, "Large-topology simulation rate: goroutine engine vs conservative lockstep")
	fmt.Fprintln(w, "(simulated node-cycles per wall-second; higher is better)")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Application\tnodes\tengine\tsim (s)\twall (ms)\tMcycles/s")
	for _, c := range cells {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.2f\t%.0f\t%.0f\n",
			c.App, c.Procs, c.Sched, c.SimSeconds, c.WallMS, c.NodeCyclesPerSec/1e6)
	}
	tw.Flush()
}
