package bench

import (
	"strings"
	"testing"

	"midway"
)

func TestUntargettedSweep(t *testing.T) {
	const lines = 16 * 1024
	rows := UntargettedSweep(lines, 7)
	if len(rows) == 0 {
		t.Fatal("empty sweep")
	}
	for _, r := range rows {
		flat := r.Micros["flat dirtybits"]
		queue := r.Micros["update queue"]
		twol := r.Micros["two-level dirtybits"]
		if flat <= 0 || queue <= 0 || twol <= 0 {
			t.Fatalf("non-positive costs at %+v", r)
		}
		// The section's claims, as inequalities that hold at the sweep
		// extremes:
		if r.DirtyFraction <= 0.001 {
			// Very sparse: both alternatives beat the flat scan.
			if queue >= flat || twol >= flat {
				t.Errorf("sparse %v: flat scan (%g) not dominated (queue %g, two-level %g)",
					r.Sequential, flat, queue, twol)
			}
		}
		if r.DirtyFraction >= 0.5 && !r.Sequential {
			// Dense random: the queue's tripled trapping makes it the
			// most expensive scheme.
			if queue < flat {
				t.Errorf("dense random: queue (%g) beat flat (%g)", queue, flat)
			}
		}
	}
}

func TestCombineAblation(t *testing.T) {
	rows, err := CombineAblation(4, ScaleSmall, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AppNames) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Combining may never increase the data volume beyond noise.
		// quicksort is included: its round scheduler makes the task-queue
		// dequeue order a seeded function of the input, so both sides of
		// the comparison are exactly reproducible.
		if r.CombinedKB > r.PlainKB*1.05+1 {
			t.Errorf("%s: combining increased transfer: %g -> %g KB", r.App, r.PlainKB, r.CombinedKB)
		}
	}
	var sb strings.Builder
	FprintCombine(&sb, rows)
	if !strings.Contains(sb.String(), "water") {
		t.Error("renderer missing rows")
	}
}

func TestFprintUntargetted(t *testing.T) {
	var sb strings.Builder
	FprintUntargetted(&sb, 1024, UntargettedSweep(1024, 3))
	out := sb.String()
	for _, want := range []string{"flat dirtybits", "update queue", "two-level", "sequential", "random"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSpeedupCurves(t *testing.T) {
	rows, err := SpeedupCurves([]int{1, 2}, []midway.Strategy{midway.RT}, ScaleSmall, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AppNames) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if len(r.Procs) != 2 || r.StandaloneSecs <= 0 {
			t.Errorf("%s: malformed row %+v", r.App, r)
		}
		for i := range r.Procs {
			if r.Seconds[i] <= 0 || r.Speedup(i) <= 0 {
				t.Errorf("%s: non-positive time at %dp", r.App, r.Procs[i])
			}
		}
	}
	var sb strings.Builder
	FprintSpeedup(&sb, rows)
	if !strings.Contains(sb.String(), "speedup") {
		t.Error("renderer output missing header")
	}
	FprintSpeedup(&sb, nil) // empty input is a no-op
}
