package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"midway"
	"midway/internal/apps"
)

// SimCell is the deterministic, machine-independent portion of one report
// cell: the simulated results a run must reproduce exactly on any host.
// CI diffs the report's "simulated" array against the committed baseline.
type SimCell struct {
	App        string  `json:"app"`
	System     string  `json:"system"`
	Procs      int     `json:"procs"`
	SimSeconds float64 `json:"sim_seconds"`
	KBMean     float64 `json:"kb_mean"`
	KBTotal    float64 `json:"kb_total"`
	Checksum   float64 `json:"checksum"`
	Messages   uint64  `json:"messages"`
}

// MeasuredCell is the machine-dependent portion of one report cell: real
// wall-clock and allocation measurements that track this implementation's
// own speed.  Allocation counts are only attributable to a cell when the
// harness runs serially, so they are omitted when workers > 1.
type MeasuredCell struct {
	App     string  `json:"app"`
	System  string  `json:"system"`
	WallMS  float64 `json:"wall_ms"`
	Allocs  uint64  `json:"allocs,omitempty"`
	AllocKB uint64  `json:"alloc_kb,omitempty"`
}

// Measured aggregates the machine-dependent half of a report.
type Measured struct {
	Workers      int            `json:"workers"`
	Gomaxprocs   int            `json:"gomaxprocs"`
	TotalWallMS  float64        `json:"total_wall_ms"`
	TotalAllocMB float64        `json:"total_alloc_mb"`
	Cells        []MeasuredCell `json:"cells"`
}

// Report is the machine-readable evaluation: every application under every
// strategy (plus the hybrid scheme and the standalone baseline), split
// into simulated results, which must be byte-identical run to run, and
// wall-clock measurements, which are the quantity this repository tries to
// drive down.
type Report struct {
	Scale string `json:"scale"`
	Procs int    `json:"procs"`
	// Sched names the execution engine the grid ran under ("goroutine"
	// when unset).  Under "lockstep" every cell's simulated results are
	// byte-identical at any GOMAXPROCS, so CI can diff all five apps.
	Sched     string    `json:"sched,omitempty"`
	Simulated []SimCell `json:"simulated"`
	// Scaling holds the large-topology engine-comparison cells (64-256
	// nodes under both engines); empty unless the scaling grid ran.
	Scaling []ScaleCell `json:"scaling,omitempty"`
	// Churn holds the elastic-membership cost cells (runtime join/drain
	// vs fixed membership); empty unless the churn grid ran.
	Churn []ChurnCell `json:"churn,omitempty"`
	// Skew holds the dynamic-ownership message-load cells (lock-home
	// migration off vs on); empty unless the skew grid ran.
	Skew     []SkewCell `json:"skew,omitempty"`
	Measured Measured   `json:"measured"`
}

// RunReport executes the report grid on a pool of workers goroutines
// (<= 0 selects DefaultWorkers) and gathers both halves of the report.
func RunReport(procs int, scale Scale, workers int) (*Report, error) {
	hcfg := midway.Config{Nodes: procs, Scheme: "hybrid"}
	if st, err := midway.ParseStrategy("hybrid"); err == nil {
		hcfg.Strategy = st
	}
	perApp := []midway.Config{
		{Nodes: procs, Strategy: midway.RT},
		{Nodes: procs, Strategy: midway.VM},
		{Nodes: procs, Strategy: midway.Blast},
		{Nodes: procs, Strategy: midway.TwinDiff},
		hcfg,
		{Nodes: 1, Strategy: midway.Standalone},
	}
	n := len(AppNames) * len(perApp)
	results := make([]apps.Result, n)
	wall := make([]time.Duration, n)
	allocs := make([]uint64, n)
	allocBytes := make([]uint64, n)
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	serial := workers == 1

	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := forEachCell(workers, n, func(i int) error {
		app, cfg := AppNames[i/len(perApp)], perApp[i%len(perApp)]
		var m0 runtime.MemStats
		if serial {
			runtime.ReadMemStats(&m0)
		}
		t0 := time.Now()
		res, err := RunApp(app, cfg, scale)
		if err != nil {
			return fmt.Errorf("bench: %s under %v: %w", app, cfg.Strategy, err)
		}
		wall[i] = time.Since(t0)
		if serial {
			var m1 runtime.MemStats
			runtime.ReadMemStats(&m1)
			allocs[i] = m1.Mallocs - m0.Mallocs
			allocBytes[i] = m1.TotalAlloc - m0.TotalAlloc
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	totalWall := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	rep := &Report{
		Scale: scale.String(),
		Procs: procs,
		Sched: Sched,
		Measured: Measured{
			Workers:      workers,
			Gomaxprocs:   runtime.GOMAXPROCS(0),
			TotalWallMS:  float64(totalWall.Microseconds()) / 1000,
			TotalAllocMB: float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
		},
	}
	for i, res := range results {
		rep.Simulated = append(rep.Simulated, SimCell{
			App:        res.App,
			System:     res.System,
			Procs:      res.Procs,
			SimSeconds: res.Seconds,
			KBMean:     res.KBTransferredMean(),
			KBTotal:    res.KBTransferredTotal(),
			Checksum:   res.Checksum,
			Messages:   res.Mean.Messages,
		})
		mc := MeasuredCell{
			App:    res.App,
			System: res.System,
			WallMS: float64(wall[i].Microseconds()) / 1000,
		}
		if serial {
			mc.Allocs = allocs[i]
			mc.AllocKB = allocBytes[i] / 1024
		}
		rep.Measured.Cells = append(rep.Measured.Cells, mc)
	}
	return rep, nil
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
