package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"midway/internal/cost"
	"midway/internal/stats"
	"midway/internal/vmem"
)

// The cost arithmetic below reproduces the paper's method for Tables 3-5:
// multiply the Table 2 invocation counts by the Table 1 primitive costs.

// TrappingCyclesRT returns the write-trapping cost of an RT-DSM run.
func TrappingCyclesRT(s stats.Snapshot, m cost.Model) cost.Cycles {
	return s.DirtybitsSet*m.DirtybitSetDouble +
		s.DirtybitsMisclassified*m.DirtybitSetPrivate
}

// TrappingCyclesVM returns the write-trapping cost of a VM-DSM run under
// the given page-fault service cost.
func TrappingCyclesVM(s stats.Snapshot, m cost.Model) cost.Cycles {
	return s.WriteFaults * m.PageWriteFault
}

// CollectionCyclesRT returns the write-collection cost of an RT-DSM run:
// dirtybit scans at the releaser plus timestamp updates at the requester.
func CollectionCyclesRT(s stats.Snapshot, m cost.Model) cost.Cycles {
	return s.CleanDirtybitsRead*m.DirtybitReadClean +
		s.DirtyDirtybitsRead*m.DirtybitReadDirty +
		s.DirtybitsUpdated*m.DirtybitUpdate
}

// CollectionCyclesVM returns the write-collection cost of a VM-DSM run:
// page diffs (interpolated by observed run counts), re-protection calls,
// and twin updates at the requester.
func CollectionCyclesVM(s stats.Snapshot, m cost.Model) cost.Cycles {
	var diffCycles cost.Cycles
	if s.PagesDiffed > 0 {
		avgRuns := int(s.DiffRuns / s.PagesDiffed)
		diffCycles = s.PagesDiffed * m.DiffCost(avgRuns, vmem.WordsPerPage)
	}
	return diffCycles +
		s.PagesWriteProtected*m.PageProtectRO +
		cost.CopyCost(m.CopyWarmPerKB, int(s.TwinBytesUpdated))
}

// Memory reference counts (Table 5), using the paper's formulas.

// wordsPerPage is the reference platform's 4-byte words per 4 KB page.
const wordsPerPage = vmem.PageSize / 4

// MemRefsTrapRT returns trapping memory references under RT-DSM: one
// dirtybit store per instrumented write.
func MemRefsTrapRT(s stats.Snapshot) uint64 {
	return s.DirtybitsSet
}

// MemRefsCollRT returns collection memory references under RT-DSM: one
// read per clean dirtybit, two per dirty dirtybit (read plus timestamp
// store), and one per timestamp update at the requester.
func MemRefsCollRT(s stats.Snapshot) uint64 {
	return s.CleanDirtybitsRead + 2*s.DirtyDirtybitsRead + s.DirtybitsUpdated
}

// MemRefsTrapVM returns trapping memory references under VM-DSM: each
// fault reads the page and writes the twin.
func MemRefsTrapVM(s stats.Snapshot) uint64 {
	return s.WriteFaults * 2 * wordsPerPage
}

// MemRefsCollVM returns collection memory references under VM-DSM: each
// diff reads the page and the twin; each twinned word updated at the
// requester is one more reference.
func MemRefsCollVM(s stats.Snapshot) uint64 {
	return s.PagesDiffed*2*wordsPerPage + s.TwinBytesUpdated/4
}

// newTabWriter returns the renderer style shared by all tables.
func newTabWriter(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// FprintTable1 renders the primitive-operation cost model (the paper's
// Table 1).  The values are the model constants; BenchmarkTable1* in the
// repository root measures this implementation's real primitives.
func FprintTable1(w io.Writer, m cost.Model) {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "System\tPrimitive Operation\tTime (µs)\tCycles")
	row := func(sys, op string, c cost.Cycles) {
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%d\n", sys, op, float64(c)/cost.CyclesPerMicrosecond, c)
	}
	row("RT-DSM", "dirtybit set, word write", m.DirtybitSetWord)
	row("", "dirtybit set, doubleword write", m.DirtybitSetDouble)
	row("", "dirtybit set, private memory", m.DirtybitSetPrivate)
	row("", "dirtybit read, clean", m.DirtybitReadClean)
	row("", "dirtybit read, dirty", m.DirtybitReadDirty)
	row("", "dirtybit update", m.DirtybitUpdate)
	row("VM-DSM", "page write fault (copy+protect)", m.PageWriteFault)
	row("", "page diff, none/all changed", m.PageDiffClean)
	row("", "page diff, every other word", m.PageDiffWorst)
	row("", "page protect read-write", m.PageProtectRW)
	row("", "page protect read-only", m.PageProtectRO)
	row("", "block copy per KB, cold", m.CopyColdPerKB)
	row("", "block copy per KB, warm", m.CopyWarmPerKB)
	tw.Flush()
}

// FprintTable2 renders per-processor invocation counts (the paper's
// Table 2).
func FprintTable2(w io.Writer, ev *Evaluation) {
	tw := newTabWriter(w)
	fmt.Fprintf(w, "Table 2: per-processor invocation counts (%d procs, %s scale)\n", ev.Procs, ev.Scale)
	fmt.Fprint(tw, "System\tOperation")
	for _, app := range AppNames {
		fmt.Fprintf(tw, "\t%s", app)
	}
	fmt.Fprintln(tw)
	rowU := func(sys, op string, get func(stats.Snapshot) uint64, vm bool) {
		fmt.Fprintf(tw, "%s\t%s", sys, op)
		for _, app := range AppNames {
			r := ev.RT(app)
			if vm {
				r = ev.VM(app)
			}
			fmt.Fprintf(tw, "\t%d", get(r.Mean))
		}
		fmt.Fprintln(tw)
	}
	rowU("RT-DSM", "dirtybits set", func(s stats.Snapshot) uint64 { return s.DirtybitsSet }, false)
	rowU("", "dirtybits misclassified", func(s stats.Snapshot) uint64 { return s.DirtybitsMisclassified }, false)
	rowU("", "clean dirtybits read", func(s stats.Snapshot) uint64 { return s.CleanDirtybitsRead }, false)
	rowU("", "dirty dirtybits read", func(s stats.Snapshot) uint64 { return s.DirtyDirtybitsRead }, false)
	rowU("", "dirtybits updated", func(s stats.Snapshot) uint64 { return s.DirtybitsUpdated }, false)
	rowU("", "data transferred (KB)", func(s stats.Snapshot) uint64 { return s.BytesTransferred / 1024 }, false)
	fmt.Fprintf(tw, "\tpercent dirty data")
	for _, app := range AppNames {
		fmt.Fprintf(tw, "\t%.1f", ev.RT(app).Mean.PercentDirty())
	}
	fmt.Fprintln(tw)
	rowU("VM-DSM", "write faults", func(s stats.Snapshot) uint64 { return s.WriteFaults }, true)
	rowU("", "pages diffed", func(s stats.Snapshot) uint64 { return s.PagesDiffed }, true)
	rowU("", "pages write protected", func(s stats.Snapshot) uint64 { return s.PagesWriteProtected }, true)
	rowU("", "data updated in twins (KB)", func(s stats.Snapshot) uint64 { return s.TwinBytesUpdated / 1024 }, true)
	rowU("", "data transferred (KB)", func(s stats.Snapshot) uint64 { return s.BytesTransferred / 1024 }, true)
	tw.Flush()
}

// Table3Row holds one application's write-trapping cost summary.
type Table3Row struct {
	App      string
	RTMillis float64
	VMMillis float64
}

// Table3 computes the write-trapping time summary (the paper's Table 3).
func Table3(ev *Evaluation, m cost.Model) []Table3Row {
	rows := make([]Table3Row, 0, len(AppNames))
	for _, app := range AppNames {
		rows = append(rows, Table3Row{
			App:      app,
			RTMillis: cost.Millis(TrappingCyclesRT(ev.RT(app).Mean, m)),
			VMMillis: cost.Millis(TrappingCyclesVM(ev.VM(app).Mean, m)),
		})
	}
	return rows
}

// FprintTable3 renders Table 3.
func FprintTable3(w io.Writer, ev *Evaluation, m cost.Model) {
	fmt.Fprintln(w, "Table 3: write trapping time (ms, per-processor average)")
	tw := newTabWriter(w)
	fmt.Fprint(tw, "Operation")
	for _, app := range AppNames {
		fmt.Fprintf(tw, "\t%s", app)
	}
	fmt.Fprintln(tw)
	rows := Table3(ev, m)
	fmt.Fprint(tw, "RT-DSM trapping time")
	for _, r := range rows {
		fmt.Fprintf(tw, "\t%.1f", r.RTMillis)
	}
	fmt.Fprintln(tw)
	fmt.Fprint(tw, "VM-DSM trapping time")
	for _, r := range rows {
		fmt.Fprintf(tw, "\t%.1f", r.VMMillis)
	}
	fmt.Fprintln(tw)
	fmt.Fprint(tw, "RT-DSM trapping advantage")
	for _, r := range rows {
		fmt.Fprintf(tw, "\t%.1f", r.VMMillis-r.RTMillis)
	}
	fmt.Fprintln(tw)
	tw.Flush()
}

// Table4Row holds one application's write-collection cost summary.
type Table4Row struct {
	App string
	// RT components (ms).
	RTClean, RTDirty, RTUpdated, RTTotal float64
	// VM components (ms).
	VMDiffed, VMProtected, VMTwins, VMTotal float64
}

// Table4 computes the write-collection cost summary (the paper's Table 4).
func Table4(ev *Evaluation, m cost.Model) []Table4Row {
	rows := make([]Table4Row, 0, len(AppNames))
	for _, app := range AppNames {
		rt := ev.RT(app).Mean
		vm := ev.VM(app).Mean
		r := Table4Row{
			App:       app,
			RTClean:   cost.Millis(rt.CleanDirtybitsRead * m.DirtybitReadClean),
			RTDirty:   cost.Millis(rt.DirtyDirtybitsRead * m.DirtybitReadDirty),
			RTUpdated: cost.Millis(rt.DirtybitsUpdated * m.DirtybitUpdate),
		}
		r.RTTotal = r.RTClean + r.RTDirty + r.RTUpdated
		var diffCycles cost.Cycles
		if vm.PagesDiffed > 0 {
			diffCycles = vm.PagesDiffed * m.DiffCost(int(vm.DiffRuns/vm.PagesDiffed), vmem.WordsPerPage)
		}
		r.VMDiffed = cost.Millis(diffCycles)
		r.VMProtected = cost.Millis(vm.PagesWriteProtected * m.PageProtectRO)
		r.VMTwins = cost.Millis(cost.CopyCost(m.CopyWarmPerKB, int(vm.TwinBytesUpdated)))
		r.VMTotal = r.VMDiffed + r.VMProtected + r.VMTwins
		rows = append(rows, r)
	}
	return rows
}

// FprintTable4 renders Table 4.
func FprintTable4(w io.Writer, ev *Evaluation, m cost.Model) {
	fmt.Fprintln(w, "Table 4: write collection cost (ms, per-processor average)")
	tw := newTabWriter(w)
	fmt.Fprint(tw, "System\tOperation")
	for _, app := range AppNames {
		fmt.Fprintf(tw, "\t%s", app)
	}
	fmt.Fprintln(tw)
	rows := Table4(ev, m)
	emit := func(sys, op string, get func(Table4Row) float64) {
		fmt.Fprintf(tw, "%s\t%s", sys, op)
		for _, r := range rows {
			fmt.Fprintf(tw, "\t%.1f", get(r))
		}
		fmt.Fprintln(tw)
	}
	emit("RT-DSM", "clean dirtybits read", func(r Table4Row) float64 { return r.RTClean })
	emit("", "dirty dirtybits read", func(r Table4Row) float64 { return r.RTDirty })
	emit("", "dirtybits updated", func(r Table4Row) float64 { return r.RTUpdated })
	emit("", "Total", func(r Table4Row) float64 { return r.RTTotal })
	emit("VM-DSM", "pages diffed", func(r Table4Row) float64 { return r.VMDiffed })
	emit("", "pages write protected", func(r Table4Row) float64 { return r.VMProtected })
	emit("", "data updated in twins", func(r Table4Row) float64 { return r.VMTwins })
	emit("", "Total", func(r Table4Row) float64 { return r.VMTotal })
	emit("RT-DSM collection advantage", "", func(r Table4Row) float64 { return r.VMTotal - r.RTTotal })
	tw.Flush()
}

// Table5Row holds one application's memory-reference summary (×1000).
type Table5Row struct {
	App                     string
	RTTrap, RTColl, RTTotal uint64
	VMTrap, VMColl, VMTotal uint64
	RTAdvantage             int64
}

// Table5 computes the memory references incurred for write detection
// (the paper's Table 5), in units of 1000 references.
func Table5(ev *Evaluation) []Table5Row {
	rows := make([]Table5Row, 0, len(AppNames))
	for _, app := range AppNames {
		rt := ev.RT(app).Mean
		vm := ev.VM(app).Mean
		r := Table5Row{
			App:    app,
			RTTrap: MemRefsTrapRT(rt) / 1000,
			RTColl: MemRefsCollRT(rt) / 1000,
			VMTrap: MemRefsTrapVM(vm) / 1000,
			VMColl: MemRefsCollVM(vm) / 1000,
		}
		r.RTTotal = r.RTTrap + r.RTColl
		r.VMTotal = r.VMTrap + r.VMColl
		r.RTAdvantage = int64(r.VMTotal) - int64(r.RTTotal)
		rows = append(rows, r)
	}
	return rows
}

// FprintTable5 renders Table 5.
func FprintTable5(w io.Writer, ev *Evaluation) {
	fmt.Fprintln(w, "Table 5: memory references for write detection (x1000, per-processor average)")
	tw := newTabWriter(w)
	fmt.Fprint(tw, "System\tOperation")
	for _, app := range AppNames {
		fmt.Fprintf(tw, "\t%s", app)
	}
	fmt.Fprintln(tw)
	rows := Table5(ev)
	emit := func(sys, op string, get func(Table5Row) uint64) {
		fmt.Fprintf(tw, "%s\t%s", sys, op)
		for _, r := range rows {
			fmt.Fprintf(tw, "\t%d", get(r))
		}
		fmt.Fprintln(tw)
	}
	emit("RT-DSM", "write trapping", func(r Table5Row) uint64 { return r.RTTrap })
	emit("", "write collection", func(r Table5Row) uint64 { return r.RTColl })
	emit("", "Total", func(r Table5Row) uint64 { return r.RTTotal })
	emit("VM-DSM", "write trapping", func(r Table5Row) uint64 { return r.VMTrap })
	emit("", "write collection", func(r Table5Row) uint64 { return r.VMColl })
	emit("", "Total", func(r Table5Row) uint64 { return r.VMTotal })
	fmt.Fprint(tw, "RT-DSM memory reference advantage\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "\t%d", r.RTAdvantage)
	}
	fmt.Fprintln(tw)
	tw.Flush()
}
