package clock

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestLamportTick(t *testing.T) {
	var c Lamport
	if c.Now() != 0 {
		t.Fatalf("zero clock reads %d", c.Now())
	}
	for i := int64(1); i <= 5; i++ {
		if got := c.Tick(); got != i {
			t.Fatalf("tick %d returned %d", i, got)
		}
	}
}

func TestLamportWitness(t *testing.T) {
	var c Lamport
	// Witnessing a larger time jumps past it.
	if got := c.Witness(10); got != 11 {
		t.Fatalf("Witness(10) = %d, want 11", got)
	}
	// Witnessing an older time still advances.
	if got := c.Witness(3); got != 12 {
		t.Fatalf("Witness(3) = %d, want 12", got)
	}
}

func TestLamportWitnessProperties(t *testing.T) {
	f := func(start uint16, remote uint16) bool {
		var c Lamport
		for i := 0; i < int(start)%100; i++ {
			c.Tick()
		}
		before := c.Now()
		after := c.Witness(int64(remote))
		// Strictly greater than both inputs.
		return after > before && after > int64(remote)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLamportConcurrent(t *testing.T) {
	var c Lamport
	const goroutines = 8
	const ticks = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ticks; i++ {
				c.Tick()
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != goroutines*ticks {
		t.Errorf("concurrent ticks lost: %d, want %d", got, goroutines*ticks)
	}
}

func TestCycleChargeAndJoin(t *testing.T) {
	var c Cycle
	c.Charge(100)
	if c.Now() != 100 {
		t.Fatalf("Charge: clock = %d", c.Now())
	}
	// Join to a later time advances.
	if got := c.Join(250); got != 250 {
		t.Fatalf("Join(250) = %d", got)
	}
	// Join to an earlier time is a no-op.
	if got := c.Join(50); got != 250 {
		t.Fatalf("Join(50) moved the clock to %d", got)
	}
}

func TestCycleConcurrentCharges(t *testing.T) {
	var c Cycle
	const goroutines = 8
	const charges = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < charges; i++ {
				c.Charge(3)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != goroutines*charges*3 {
		t.Errorf("concurrent charges lost: %d, want %d", got, goroutines*charges*3)
	}
}

func TestCycleJoinNeverRegresses(t *testing.T) {
	f := func(charges []uint8, joins []uint16) bool {
		var c Cycle
		prev := uint64(0)
		for i := 0; i < len(charges) || i < len(joins); i++ {
			if i < len(charges) {
				c.Charge(uint64(charges[i]))
			}
			if i < len(joins) {
				c.Join(uint64(joins[i]))
			}
			now := c.Now()
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrontierOrdering(t *testing.T) {
	var f Frontier
	if _, _, _, ok := f.Next(); ok {
		t.Error("fresh frontier reports a delivery")
	}
	// Monotone sequence, including ties on every component.
	steps := []struct {
		at, time uint64
		sender   int
		want     bool
	}{
		{100, 50, 3, true},
		{100, 50, 3, true},  // exact tie: a sender's program-order run
		{100, 50, 1, false}, // sender regresses at equal (at, time)
		{100, 60, 0, true},  // later send time at equal arrival
		{100, 55, 9, false}, // send time regresses at equal arrival
		{200, 10, 0, true},  // later arrival resets the inner keys
		{150, 99, 9, false}, // arrival regresses
	}
	for i, s := range steps {
		if got := f.Advance(s.at, s.time, s.sender); got != s.want {
			t.Errorf("step %d: Advance(%d,%d,%d) = %v, want %v", i, s.at, s.time, s.sender, got, s.want)
		}
	}
	if at, tm, sender, ok := f.Next(); !ok || at != 200 || tm != 10 || sender != 0 {
		t.Errorf("watermark = (%d,%d,%d,%v), want (200,10,0,true)", at, tm, sender, ok)
	}
	// Reset opens a new phase: any key is admissible again.
	f.Reset()
	if !f.Advance(1, 1, 7) {
		t.Error("Advance after Reset rejected")
	}
}
