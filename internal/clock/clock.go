// Package clock provides the two clocks a Midway node keeps.
//
// The Lamport clock orders updates to individual cache lines: RT-DSM
// dirtybits are really timestamps drawn from this clock, which is advanced
// and exchanged at synchronization points exactly as in [Lamport 78].
//
// The cycle clock accumulates simulated execution time in processor cycles.
// Because entry consistency confines inter-node interaction to
// synchronization messages, joining the receiver's cycle clock with
// (sender's clock + message cost) at every message yields a conservative and
// exact simulated-time model for the whole distributed computation: a node's
// clock at any synchronization point equals the time that point would occur
// on the reference hardware.
package clock

import "sync/atomic"

// Lamport is a logical clock.  The zero value is a clock at time zero,
// ready to use.  All methods are safe for concurrent use: application code
// charges time while the node's protocol handler services remote requests.
type Lamport struct {
	t atomic.Int64
}

// Now returns the current logical time without advancing it.
func (c *Lamport) Now() int64 {
	return c.t.Load()
}

// Tick advances the clock by one and returns the new time.
func (c *Lamport) Tick() int64 {
	return c.t.Add(1)
}

// Witness merges an observed remote timestamp into the clock, so that the
// local time becomes strictly greater than both the previous local time and
// the remote time.  It returns the new local time.
func (c *Lamport) Witness(remote int64) int64 {
	for {
		cur := c.t.Load()
		next := cur + 1
		if remote >= next {
			next = remote + 1
		}
		if c.t.CompareAndSwap(cur, next) {
			return next
		}
	}
}

// Cycle is a simulated processor-cycle clock.  The zero value reads zero.
// Charge is called on the application's instruction path; Join is called by
// the protocol when a message (carrying the sender's clock plus transit
// cost) arrives.  Both are safe for concurrent use.
type Cycle struct {
	c atomic.Uint64
}

// Now returns the current simulated time in cycles.
func (c *Cycle) Now() uint64 {
	return c.c.Load()
}

// Charge advances the clock by n cycles and returns the new time.
func (c *Cycle) Charge(n uint64) uint64 {
	return c.c.Add(n)
}

// Join advances the clock to at least t, modelling the receipt of a message
// sent at (remote) time t: the receiver cannot act on the message before the
// moment it arrives.  It returns the clock's new value.
func (c *Cycle) Join(t uint64) uint64 {
	for {
		cur := c.c.Load()
		if t <= cur {
			return cur
		}
		if c.c.CompareAndSwap(cur, t) {
			return t
		}
	}
}
