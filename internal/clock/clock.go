// Package clock provides the two clocks a Midway node keeps.
//
// The Lamport clock orders updates to individual cache lines: RT-DSM
// dirtybits are really timestamps drawn from this clock, which is advanced
// and exchanged at synchronization points exactly as in [Lamport 78].
//
// The cycle clock accumulates simulated execution time in processor cycles.
// Because entry consistency confines inter-node interaction to
// synchronization messages, joining the receiver's cycle clock with
// (sender's clock + message cost) at every message yields a conservative and
// exact simulated-time model for the whole distributed computation: a node's
// clock at any synchronization point equals the time that point would occur
// on the reference hardware.
package clock

import "sync/atomic"

// Lamport is a logical clock.  The zero value is a clock at time zero,
// ready to use.  All methods are safe for concurrent use: application code
// charges time while the node's protocol handler services remote requests.
type Lamport struct {
	t atomic.Int64
}

// Now returns the current logical time without advancing it.
func (c *Lamport) Now() int64 {
	return c.t.Load()
}

// Tick advances the clock by one and returns the new time.
func (c *Lamport) Tick() int64 {
	return c.t.Add(1)
}

// Witness merges an observed remote timestamp into the clock, so that the
// local time becomes strictly greater than both the previous local time and
// the remote time.  It returns the new local time.
func (c *Lamport) Witness(remote int64) int64 {
	for {
		cur := c.t.Load()
		next := cur + 1
		if remote >= next {
			next = remote + 1
		}
		if c.t.CompareAndSwap(cur, next) {
			return next
		}
	}
}

// Cycle is a simulated processor-cycle clock.  The zero value reads zero.
// Charge is called on the application's instruction path; Join is called by
// the protocol when a message (carrying the sender's clock plus transit
// cost) arrives.  Both are safe for concurrent use.
type Cycle struct {
	c atomic.Uint64
}

// Now returns the current simulated time in cycles.
func (c *Cycle) Now() uint64 {
	return c.c.Load()
}

// Charge advances the clock by n cycles and returns the new time.
func (c *Cycle) Charge(n uint64) uint64 {
	return c.c.Add(n)
}

// Join advances the clock to at least t, modelling the receipt of a message
// sent at (remote) time t: the receiver cannot act on the message before the
// moment it arrives.  It returns the clock's new value.
func (c *Cycle) Join(t uint64) uint64 {
	for {
		cur := c.c.Load()
		if t <= cur {
			return cur
		}
		if c.c.CompareAndSwap(cur, t) {
			return t
		}
	}
}

// Frontier is the next-event lookahead watermark of a conservative
// simulation's delivery phase.  Deliveries within one phase must be
// monotone in the total order (arrival cycles, send-time cycles, sender
// id); Advance records each delivery and reports whether the order held.
// Entry consistency lets the engine treat full quiescence as the phase
// boundary (lazy release stamping means per-node clocks give no sound
// lower bound on future send times), so the frontier restarts at every
// phase via Reset rather than growing monotonically across the run.
//
// The zero value is a frontier at the beginning of a phase.  Frontier is
// not safe for concurrent use; the single delivery goroutine owns it.
type Frontier struct {
	valid  bool
	at     uint64 // arrival cycles of the last delivery
	time   uint64 // sender's cycle clock at send
	sender int
}

// Reset starts a new delivery phase: the next Advance always succeeds.
func (f *Frontier) Reset() { *f = Frontier{} }

// Advance records a delivery with the given arrival cycles, send-time
// cycles and sender id.  It returns false if the delivery precedes the
// phase's watermark — a violated delivery order — and true otherwise
// (ties are permitted: a sender may emit several messages with equal
// stamps, ordered by its program-order sequence).
func (f *Frontier) Advance(at, time uint64, sender int) bool {
	if f.valid {
		switch {
		case at < f.at:
			return false
		case at == f.at && time < f.time:
			return false
		case at == f.at && time == f.time && sender < f.sender:
			return false
		}
	}
	f.valid = true
	f.at, f.time, f.sender = at, time, sender
	return true
}

// Next returns the watermark: the (arrival, send-time, sender) key of the
// most recent delivery, and whether any delivery has happened this phase.
func (f *Frontier) Next() (at, time uint64, sender int, ok bool) {
	return f.at, f.time, f.sender, f.valid
}
