package midway_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and executes every example and the single-run CLI
// with small inputs, so the documented entry points cannot rot.  Skipped
// under -short (it shells out to the go tool).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example execution in -short mode")
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"quickstart", []string{"run", "./examples/quickstart"}, "counter = 4000"},
		{"gridsolver", []string{"run", "./examples/gridsolver", "-n", "32", "-iters", "10", "-procs", "2"}, "temperature profile"},
		{"taskqueue", []string{"run", "./examples/taskqueue", "-n", "512", "-chunk", "64", "-procs", "2"}, "computed 512 elements"},
		{"comparison", []string{"run", "./examples/comparison", "-entries", "8", "-rounds", "3", "-procs", "2"}, "TwinDiff"},
		{"midway-run", []string{"run", "./cmd/midway-run", "-app", "sor", "-strategy", "rt", "-procs", "2", "-scale", "small"}, "verified OK"},
		{"midway-bench", []string{"run", "./cmd/midway-bench", "-exp", "table1"}, "dirtybit set"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", c.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%v: %v\n%s", c.args, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Errorf("output missing %q:\n%s", c.want, out)
			}
		})
	}
}
