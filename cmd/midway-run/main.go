// Command midway-run executes a single benchmark application under a
// chosen DSM configuration and prints its measurements: simulated
// execution time, data transferred, and the primitive-operation counters.
//
// Usage:
//
//	midway-run -app water|quicksort|matrix|sor|cholesky|churn|skew
//	           [-strategy rt|vm|blast|twin|none|hybrid] [-scheme name]
//	           [-procs 8] [-scale small|medium|paper]
//	           [-max-nodes 4] [-join 2@8,3@16] [-drain 1@32]
//	           [-migrate] [-migrate-threshold 0.6]
//	           [-fault-us 1200] [-latency-us 500] [-bandwidth-mbps 140]
//	           [-tcp] [-sched goroutine|lockstep] [-eager] [-fault spec] [-reliable]
//	           [-trace FILE] [-trace-format text|jsonl|chrome] [-profile-objects]
//
// Examples:
//
//	midway-run -app sor -strategy rt -procs 8
//	midway-run -app quicksort -strategy vm -procs 4 -scale paper
//	midway-run -app water -strategy vm -fault-us 122   # fast exceptions
//	midway-run -app cholesky -scheme hybrid            # per-region RT/VM dispatch
//	midway-run -app sor -fault drop=0.05,dup=0.02,reorder=0.1,seed=7
//	                                                   # chaos run; results must not change
//	midway-run -app sor -procs 2 -trace sor.jsonl -trace-format jsonl
//	                                                   # event trace for midway-trace
//	midway-run -app sor -trace sor.json -trace-format chrome
//	                                                   # open in chrome://tracing / Perfetto
//	midway-run -app churn -procs 2 -max-nodes 4 -join 2@8,3@16 -drain 1@32
//	                                                   # elastic membership: two runtime joins, one drain
//	midway-run -app skew -procs 8 -migrate             # lock-home migration on the skewed workload
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"text/tabwriter"

	"midway"
	"midway/internal/bench"
)

// reliableFlag is a boolean flag that also accepts a tuning spec:
// -reliable turns the layer on with defaults, -reliable=initial=10ms,...
// turns it on and tunes it.
type reliableFlag struct {
	on   bool
	spec string
}

func (f *reliableFlag) String() string   { return f.spec }
func (f *reliableFlag) IsBoolFlag() bool { return true }
func (f *reliableFlag) Set(s string) error {
	switch s {
	case "true", "":
		f.on = true
	case "false":
		f.on = false
		f.spec = ""
	default:
		f.on = true
		f.spec = s
	}
	return nil
}

func main() {
	app := flag.String("app", "sor", "application: water, quicksort, matrix, sor, cholesky, churn, skew")
	strategyName := flag.String("strategy", "rt", "write detection: rt, vm, blast, twin, none, hybrid")
	schemeName := flag.String("scheme", "",
		"write-detection scheme by registry name ("+strings.Join(midway.SchemeNames(), ", ")+"); overrides -strategy")
	procs := flag.Int("procs", 8, "number of processors")
	maxNodes := flag.Int("max-nodes", 0,
		"provision capacity for this many processors (elastic membership); 0 = fixed membership")
	joinSpec := flag.String("join", "",
		"schedule runtime joins for -app churn, e.g. 4@8,5@16 (node@round; requires -max-nodes)")
	drainSpec := flag.String("drain", "",
		"schedule graceful drains for -app churn, e.g. 1@32 (node@round; requires -max-nodes)")
	scaleName := flag.String("scale", "medium", "input scale: small, medium, paper")
	faultUS := flag.Float64("fault-us", 0, "page write fault cost in µs (0 = Mach default, 1200)")
	latencyUS := flag.Float64("latency-us", 0, "one-way message latency in µs (0 = default, 500)")
	bwMbps := flag.Float64("bandwidth-mbps", 0, "network bandwidth in Mbit/s (0 = default, 140)")
	useTCP := flag.Bool("tcp", false, "route protocol messages over loopback TCP sockets")
	sched := flag.String("sched", "",
		"execution engine: goroutine (default) or lockstep (deterministic parallel simulation core; in-process transport only)")
	faultSpec := flag.String("fault", "",
		"inject deterministic transport faults, e.g. drop=0.05,dup=0.02,reorder=0.1,seed=7 (implies reliable delivery)")
	var reliable reliableFlag
	flag.Var(&reliable, "reliable",
		"interpose the reliable delivery layer even without -fault; optionally tune it, e.g. -reliable=initial=10ms,max=200ms,giveup=10,jitter=0.2,seed=7")
	partitionSpec := flag.String("partition", "",
		"inject a deterministic simulated-time network partition, e.g. minority=2+3,at=40000,healat=90000 (composes with -sched lockstep); for wall-clock cuts use -fault part=.../partafter=.../heal=...")
	onPartition := flag.String("on-partition", "",
		"reaction to a declared partition: fence (default; minority parks until heal), abort (fail the run), degrade (minority declared dead; implies crash-degrade recovery)")
	migrate := flag.Bool("migrate", false,
		"enable dynamic lock-home migration (sharded directory, profile-driven home moves, token-forwarding)")
	migrateThreshold := flag.Float64("migrate-threshold", 0,
		"dominance fraction of a lock's recent acquires that triggers a home migration (0 = default 0.6)")
	raceDetect := flag.Bool("race-detect", false,
		"enable the entry-consistency race detector (unguarded writes, unordered conflicts); findings appear in the trace and midway-trace's race report")
	plantRace := flag.Bool("plant-race", false,
		"arm the sor workload's deliberate unguarded write (race-detector true-positive oracle)")
	eager := flag.Bool("eager", false, "eager dirtybit timestamps (RT only)")
	combine := flag.Bool("combine", false, "combine VM-DSM incarnation histories (§3.4 alternative)")
	traceFile := flag.String("trace", "", "write protocol events to this file (\"-\" = stderr)")
	traceFormat := flag.String("trace-format", "text",
		"trace encoding: text (one line per event), jsonl (midway-trace input), chrome (chrome://tracing)")
	profileObjects := flag.Bool("profile-objects", false,
		"print per-object and per-region \"hot objects\" tables after the run")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			_ = pprof.WriteHeapProfile(f)
		}()
	}

	strategy, err := midway.ParseStrategy(*strategyName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *schemeName != "" {
		// The scheme name drives detection; when it is also a strategy name
		// keep the Strategy field (and the result's label) in agreement.
		if st, err := midway.ParseStrategy(*schemeName); err == nil {
			strategy = st
		}
	}
	scale, err := bench.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *sched == "lockstep" && *useTCP {
		fmt.Fprintln(os.Stderr, "-sched=lockstep drives simulated time itself and requires the in-process stepped transport; it cannot run over TCP sockets (-tcp)")
		os.Exit(2)
	}
	if (*joinSpec != "" || *drainSpec != "") && *maxNodes == 0 {
		fmt.Fprintln(os.Stderr, "-join/-drain schedule membership churn and require spare capacity: set -max-nodes above -procs")
		os.Exit(2)
	}
	bench.JoinSpec = *joinSpec
	bench.DrainSpec = *drainSpec
	partPolicy, err := midway.ParsePartitionPolicy(*onPartition)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := midway.Config{
		Nodes:               *procs,
		MaxNodes:            *maxNodes,
		Strategy:            strategy,
		Scheme:              *schemeName,
		Sched:               *sched,
		PageFaultMicros:     *faultUS,
		NetLatencyMicros:    *latencyUS,
		NetBandwidthMbps:    *bwMbps,
		UseTCP:              *useTCP,
		FaultSpec:           *faultSpec,
		Reliable:            reliable.on,
		ReliableSpec:        reliable.spec,
		Partition:           *partitionSpec,
		OnPartition:         partPolicy,
		EagerTimestamps:     *eager,
		CombineIncarnations: *combine,
		Migrate:             *migrate,
		MigrateThreshold:    *migrateThreshold,
		RaceDetect:          *raceDetect,
	}
	if partPolicy == midway.PartitionDegrade {
		// Degrading a partition declares the minority dead; the run can
		// only continue if crash recovery is on.
		cfg.OnCrash = midway.CrashDegrade
	}
	bench.RaceDetect = *raceDetect
	bench.PlantRace = *plantRace
	cfg.ProfileObjects = *profileObjects
	var traceOut *os.File
	if *traceFile != "" {
		cfg.TraceFormat = *traceFormat
		if *traceFile == "-" {
			cfg.Trace = os.Stderr
		} else {
			f, err := os.Create(*traceFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "opening trace file: %v\n", err)
				os.Exit(2)
			}
			traceOut = f
			cfg.Trace = f
		}
	}
	res, err := bench.RunApp(*app, cfg, scale)
	if traceOut != nil {
		if cerr := traceOut.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("closing trace file: %w", cerr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s under %s, %d procs, %s scale: verified OK\n", res.App, res.System, res.Procs, scale)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "simulated execution time\t%.3f s\n", res.Seconds)
	fmt.Fprintf(tw, "data transferred (mean/proc)\t%.1f KB\n", res.KBTransferredMean())
	fmt.Fprintf(tw, "data transferred (total)\t%.1f KB\n", res.KBTransferredTotal())
	fmt.Fprintf(tw, "checksum\t%g\n", res.Checksum)
	m := res.Mean
	fmt.Fprintf(tw, "dirtybits set\t%d\n", m.DirtybitsSet)
	fmt.Fprintf(tw, "dirtybits misclassified\t%d\n", m.DirtybitsMisclassified)
	fmt.Fprintf(tw, "clean dirtybits read\t%d\n", m.CleanDirtybitsRead)
	fmt.Fprintf(tw, "dirty dirtybits read\t%d\n", m.DirtyDirtybitsRead)
	fmt.Fprintf(tw, "dirtybits updated\t%d\n", m.DirtybitsUpdated)
	fmt.Fprintf(tw, "write faults\t%d\n", m.WriteFaults)
	fmt.Fprintf(tw, "pages diffed\t%d\n", m.PagesDiffed)
	fmt.Fprintf(tw, "pages write protected\t%d\n", m.PagesWriteProtected)
	fmt.Fprintf(tw, "twin bytes updated\t%d\n", m.TwinBytesUpdated)
	fmt.Fprintf(tw, "messages\t%d\n", m.Messages)
	fmt.Fprintf(tw, "lock transfers\t%d\n", m.LockTransfers)
	fmt.Fprintf(tw, "barrier crossings\t%d\n", m.BarrierCrossings)
	tw.Flush()
	if *profileObjects {
		fmt.Println()
		res.WriteProfiles(os.Stdout)
	}
}
