// Command midway-trace analyzes a protocol event trace captured with
// midway-run/midway-bench -trace.
//
// For a JSONL trace (-trace-format jsonl) it reports lock-contention
// ranking, a critical-path estimate and per-epoch barrier skew.  For a
// Chrome trace (-trace-format chrome; recognized by its leading '{') it
// validates the trace_event document and prints a summary.  All times are
// simulated, so the reports are reproducible run to run.
//
// Usage:
//
//	midway-trace [FILE]    # FILE defaults to standard input ("-")
//
// Examples:
//
//	midway-run -app sor -procs 2 -trace sor.jsonl -trace-format jsonl
//	midway-trace sor.jsonl
//	midway-run -app water -trace water.json -trace-format chrome
//	midway-trace water.json      # validate the chrome://tracing export
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"midway/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "midway-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	var in io.Reader = os.Stdin
	name := "stdin"
	switch {
	case len(os.Args) > 2:
		return fmt.Errorf("usage: midway-trace [FILE]")
	case len(os.Args) == 2 && os.Args[1] != "-":
		f, err := os.Open(os.Args[1])
		if err != nil {
			return err
		}
		defer f.Close()
		in, name = f, os.Args[1]
	}

	br := bufio.NewReader(in)
	first, err := firstByte(br)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if first == '{' {
		// A JSONL trace's first object also starts with '{' but never with
		// the document key "traceEvents"; peek far enough to tell them apart.
		head, _ := br.Peek(64)
		if isChromeDoc(head) {
			return summarizeChrome(br, name)
		}
	}
	a, err := obs.Analyze(br)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	a.WriteReport(os.Stdout)
	return nil
}

// firstByte peeks at the first non-whitespace byte without consuming it.
func firstByte(br *bufio.Reader) (byte, error) {
	for {
		b, err := br.Peek(1)
		if err != nil {
			if err == io.EOF {
				return 0, fmt.Errorf("empty trace")
			}
			return 0, err
		}
		switch b[0] {
		case ' ', '\t', '\r', '\n':
			br.ReadByte()
		default:
			return b[0], nil
		}
	}
}

// isChromeDoc reports whether the head of the input looks like the Chrome
// trace_event document wrapper rather than a JSONL event object.
func isChromeDoc(head []byte) bool {
	return jsonFirstKey(head) == "traceEvents"
}

// jsonFirstKey extracts the first object key from a JSON prefix.
func jsonFirstKey(b []byte) string {
	dec := json.NewDecoder(bytes.NewReader(b))
	if tok, err := dec.Token(); err != nil || tok != json.Delim('{') {
		return ""
	}
	tok, err := dec.Token()
	if err != nil {
		return ""
	}
	key, _ := tok.(string)
	return key
}

// chromeSummary mirrors the subset of the trace_event format the summary
// needs; unknown fields are ignored, malformed documents fail.
type chromeSummary struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Pid  int32   `json:"pid"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// summarizeChrome validates the document and prints per-node span/instant
// counts.
func summarizeChrome(r io.Reader, name string) error {
	dec := json.NewDecoder(r)
	var doc chromeSummary
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("%s: invalid chrome trace: %w", name, err)
	}
	nodes := map[int32]bool{}
	var spans, instants, meta int
	var lastTs float64
	openSpans := 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "b":
			spans++
			openSpans++
		case "e":
			openSpans--
		case "i":
			instants++
		case "M":
			meta++
			continue // metadata has no timeline presence
		default:
			return fmt.Errorf("%s: invalid chrome trace: unknown phase %q", name, e.Ph)
		}
		nodes[e.Pid] = true
		if e.Ts > lastTs {
			lastTs = e.Ts
		}
	}
	if openSpans != 0 {
		return fmt.Errorf("%s: invalid chrome trace: %d unbalanced async spans", name, openSpans)
	}
	fmt.Printf("valid chrome trace: %d events (%d spans, %d instants) across %d nodes, %.3fms simulated\n",
		len(doc.TraceEvents), spans, instants, len(nodes), lastTs/1000)
	fmt.Println("open it in chrome://tracing or https://ui.perfetto.dev")
	return nil
}
