package main

import (
	"os"
	"strings"
	"testing"
)

// runOn invokes the tool's run() as if FILE were the sole argument.
func runOn(t *testing.T, file string) error {
	t.Helper()
	saved := os.Args
	defer func() { os.Args = saved }()
	os.Args = []string{"midway-trace", file}
	return run()
}

// TestTruncatedTraceFails pins the corrupted-input contract: a JSONL trace
// cut off mid-object must fail (non-zero exit via main) with an error
// naming the offending line, not be silently analyzed up to the damage.
func TestTruncatedTraceFails(t *testing.T) {
	err := runOn(t, "testdata/truncated.jsonl")
	if err == nil {
		t.Fatal("run succeeded on a truncated trace, want a parse error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error = %q, want it to name line 3", err)
	}
	if !strings.Contains(err.Error(), "truncated.jsonl") {
		t.Errorf("error = %q, want it to name the input file", err)
	}
}

// TestUnknownEventKindFails pins the same contract for a structurally
// valid line carrying an event kind this build does not know.
func TestUnknownEventKindFails(t *testing.T) {
	err := runOn(t, "testdata/unknown-kind.jsonl")
	if err == nil {
		t.Fatal("run succeeded on an unknown event kind, want an error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error = %q, want it to name line 2", err)
	}
	if !strings.Contains(err.Error(), "no-such-kind") {
		t.Errorf("error = %q, want it to name the unknown kind", err)
	}
}

// TestEmptyTraceFails pins that an empty input is an error, not an empty
// report.
func TestEmptyTraceFails(t *testing.T) {
	empty := t.TempDir() + "/empty.jsonl"
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	err := runOn(t, empty)
	if err == nil {
		t.Fatal("run succeeded on an empty trace, want an error")
	}
	if !strings.Contains(err.Error(), "empty trace") {
		t.Errorf("error = %q, want the empty-trace diagnostic", err)
	}
}
