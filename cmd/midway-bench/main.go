// Command midway-bench regenerates the paper's evaluation: Figure 2,
// Tables 1-5, Figures 3 and 4, the uniprocessor comparison, and this
// reproduction's Section 3.5 ablation.
//
// Usage:
//
//	midway-bench [-exp all|fig2|table1|table2|table3|table4|table5|fig3|fig4|uni|ablation|hybrid|scaling|churn|skew]
//	             [-procs 8] [-scale small|medium|paper] [-scheme hybrid] [-fault spec]
//	             [-sched goroutine|lockstep] [-workers n] [-migrate] [-migrate-threshold 0.6]
//
// Examples:
//
//	midway-bench                      # the full evaluation at medium scale
//	midway-bench -exp fig2 -procs 8   # just Figure 2
//	midway-bench -exp hybrid          # RT vs VM vs Hybrid vs standalone
//	midway-bench -scale paper         # paper-size inputs (minutes)
//	midway-bench -sched lockstep      # deterministic parallel simulation core
//	midway-bench -exp scaling         # 64-256 node engine comparison
//	midway-bench -exp skew            # lock-home migration off vs on
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"midway"
	"midway/internal/bench"
	"midway/internal/cost"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig2, table1, table2, table3, table4, table5, fig3, fig4, uni, ablation, untargetted, combine, speedup, hybrid, churn, skew")
	procs := flag.Int("procs", 8, "number of processors")
	scaleName := flag.String("scale", "medium", "input scale: small, medium, paper")
	scheme := flag.String("scheme", "hybrid",
		"registry scheme the hybrid experiment compares against RT/VM (see midway.SchemeNames)")
	faultSpec := flag.String("fault", "",
		"inject deterministic transport faults into every run, e.g. drop=0.05,dup=0.02,reorder=0.1,seed=7")
	partitionSpec := flag.String("partition", "",
		"inject a deterministic simulated-time network partition into every run, e.g. minority=2+3,at=40000,healat=90000")
	onPartition := flag.String("on-partition", "",
		"reaction to a declared partition: fence (default), abort, degrade")
	traceDir := flag.String("trace", "",
		"write one protocol event trace per run into this directory (<app>-<scheme>-<procs>p.*)")
	traceFormat := flag.String("trace-format", "jsonl",
		"trace encoding for -trace: text, jsonl (midway-trace input), chrome (chrome://tracing)")
	profileObjects := flag.Bool("profile-objects", false,
		"aggregate per-object/per-region profiles; with -trace, writes a .profile file per run")
	workers := flag.Int("workers", bench.DefaultWorkers(),
		"experiment cells run concurrently on this many workers (1 = serial)")
	sched := flag.String("sched", "",
		"execution engine for every run: goroutine (default) or lockstep (deterministic parallel simulation core)")
	scaling := flag.Bool("scaling", false,
		"run the 64-256 node engine-comparison grid (with -json, added to the report's scaling section)")
	skewGrid := flag.Bool("skew", false,
		"run the dynamic-ownership skewed-lock grid, migration off vs on (with -json, added to the report's skew section)")
	migrate := flag.Bool("migrate", false,
		"enable dynamic lock-home migration in every run")
	migrateThreshold := flag.Float64("migrate-threshold", 0,
		"dominance fraction of a lock's recent acquires that triggers a home migration (0 = default 0.6)")
	raceDetect := flag.Bool("race-detect", false,
		"enable the entry-consistency race detector in every run (overhead measurement; simulated results are unchanged)")
	jsonOut := flag.Bool("json", false,
		"emit the machine-readable evaluation report (simulated results plus wall-clock/alloc measurements) instead of tables")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	switch *sched {
	case "", "goroutine", "lockstep":
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q (want goroutine or lockstep)\n", *sched)
		os.Exit(2)
	}
	bench.FaultSpec = *faultSpec
	partPolicy, err := midway.ParsePartitionPolicy(*onPartition)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	bench.Partition = *partitionSpec
	bench.OnPartition = partPolicy
	bench.Sched = *sched
	bench.Migrate = *migrate
	bench.MigrateThreshold = *migrateThreshold
	bench.RaceDetect = *raceDetect
	if *sched == "lockstep" {
		// Keep cells × engine threads within GOMAXPROCS: concurrent cells
		// already fill the host, so each engine gets the leftover share.
		if threads := runtime.GOMAXPROCS(0) / max(*workers, 1); threads > 1 {
			bench.SchedThreads = threads
		} else {
			bench.SchedThreads = 1
		}
	}
	bench.ProfileObjects = *profileObjects
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		bench.TraceDir = *traceDir
		bench.TraceFormat = *traceFormat
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			_ = pprof.WriteHeapProfile(f)
		}()
	}

	scale, err := bench.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *jsonOut {
		err = runJSON(*procs, scale, *workers, *scaling, *skewGrid)
	} else {
		err = run(*exp, *procs, scale, *scheme, *workers, *scaling, *skewGrid)
	}
	if err != nil {
		pprof.StopCPUProfile()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runJSON emits the machine-readable report: the full strategy × app grid
// with simulated results (diffed by CI against the committed baseline)
// and wall-clock/allocation measurements (the perf trajectory).
func runJSON(procs int, scale bench.Scale, workers int, scaling, skewGrid bool) error {
	rep, err := bench.RunReport(procs, scale, workers)
	if err != nil {
		return err
	}
	if scaling {
		cells, err := bench.RunScaling(scale)
		if err != nil {
			return err
		}
		rep.Scaling = cells
	}
	if skewGrid {
		cells, err := bench.RunSkew(scale)
		if err != nil {
			return err
		}
		rep.Skew = cells
	}
	return rep.WriteJSON(os.Stdout)
}

func run(exp string, procs int, scale bench.Scale, scheme string, workers int, scaling, skewGrid bool) error {
	w := os.Stdout
	model := cost.Default()

	needsRTVM := map[string]bool{
		"all": true, "fig2": true, "table2": true, "table3": true,
		"table4": true, "table5": true, "fig3": true, "fig4": true,
	}
	needsAblation := exp == "all" || exp == "ablation"

	var ev *bench.Evaluation
	if needsRTVM[exp] || needsAblation {
		strategies := []midway.Strategy{midway.RT, midway.VM}
		if needsAblation {
			strategies = append(strategies, midway.Blast, midway.TwinDiff)
		}
		withStandalone := exp == "all" || exp == "fig2"
		fmt.Fprintf(w, "running evaluation: %d procs, %s scale, strategies %v ...\n\n",
			procs, scale, strategies)
		var err error
		ev, err = bench.RunEvaluation(procs, scale, strategies, withStandalone, workers)
		if err != nil {
			return err
		}
	}

	section := func(name string, f func()) {
		if exp == "all" || exp == name {
			f()
			fmt.Fprintln(w)
		}
	}
	section("table1", func() { bench.FprintTable1(w, model) })
	section("fig2", func() { bench.FprintFigure2(w, ev) })
	section("table2", func() { bench.FprintTable2(w, ev) })
	section("table3", func() { bench.FprintTable3(w, ev, model) })
	section("fig3", func() { bench.FprintFigure3(w, ev, model) })
	section("table4", func() { bench.FprintTable4(w, ev, model) })
	section("fig4", func() { bench.FprintFigure4(w, ev, model) })
	section("table5", func() { bench.FprintTable5(w, ev) })
	section("uni", func() {
		rows, err := bench.UniprocessorRows(scale, workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return
		}
		bench.FprintUniprocessor(w, rows)
	})
	section("ablation", func() { bench.FprintAblation(w, ev) })
	section("untargetted", func() {
		const lines = 64 * 1024
		bench.FprintUntargetted(w, lines, bench.UntargettedSweep(lines, 7))
	})
	section("speedup", func() {
		rows, err := bench.SpeedupCurves([]int{1, 2, 4, 8},
			[]midway.Strategy{midway.RT, midway.VM}, scale, workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "speedup: %v\n", err)
			return
		}
		bench.FprintSpeedup(w, rows)
	})
	section("hybrid", func() {
		rows, err := bench.HybridComparison(procs, scale, scheme, workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybrid: %v\n", err)
			return
		}
		bench.FprintHybrid(w, procs, scale, scheme, rows)
	})
	if scaling || exp == "scaling" {
		section("scaling", func() {
			cells, err := bench.RunScaling(scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "scaling: %v\n", err)
				return
			}
			bench.FprintScaling(w, cells)
		})
	}
	if exp == "churn" {
		section("churn", func() {
			cells, err := bench.RunChurn(scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "churn: %v\n", err)
				return
			}
			bench.FprintChurn(w, cells)
		})
	}
	if skewGrid || exp == "skew" {
		section("skew", func() {
			cells, err := bench.RunSkew(scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "skew: %v\n", err)
				return
			}
			bench.FprintSkew(w, cells)
		})
	}
	section("combine", func() {
		rows, err := bench.CombineAblation(procs, scale, workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "combine ablation: %v\n", err)
			return
		}
		bench.FprintCombine(w, rows)
	})

	known := map[string]bool{
		"all": true, "fig2": true, "table1": true, "table2": true, "table3": true,
		"table4": true, "table5": true, "fig3": true, "fig4": true, "uni": true,
		"ablation": true, "untargetted": true, "combine": true, "speedup": true,
		"hybrid": true, "scaling": true, "churn": true, "skew": true,
	}
	if !known[exp] {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
