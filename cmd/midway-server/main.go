// Command midway-server hosts one node of a multi-process DSM deployment.
// Start one instance per node — on one machine or several — each with the
// same address list and its own node id; the processes mesh over TCP and
// run the selected SPMD workload together.
//
// Usage:
//
//	midway-server -node <id> -addrs host0:port0,host1:port1,...
//	              [-strategy rt|vm|blast|twin] [-workload ring|exchange]
//	              [-rounds 100]
//
// Example (three nodes on one machine, three shells):
//
//	midway-server -node 0 -addrs :9700,:9701,:9702
//	midway-server -node 1 -addrs :9700,:9701,:9702
//	midway-server -node 2 -addrs :9700,:9701,:9702
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"midway"
)

func main() {
	node := flag.Int("node", -1, "this process's node id")
	addrList := flag.String("addrs", "", "comma-separated node addresses, indexed by node id")
	strategyName := flag.String("strategy", "rt", "write detection: rt, vm, blast, twin")
	workload := flag.String("workload", "ring", "workload: ring (lock-passed counter), exchange (bound barrier)")
	rounds := flag.Int("rounds", 100, "workload rounds")
	flag.Parse()

	addrs := strings.Split(*addrList, ",")
	if *node < 0 || *addrList == "" || *node >= len(addrs) {
		fmt.Fprintln(os.Stderr, "midway-server: -node and -addrs are required; see -h")
		os.Exit(2)
	}
	strategy, err := midway.ParseStrategy(*strategyName)
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("node %d of %d joining mesh at %s", *node, len(addrs), addrs[*node])
	sys, err := midway.NewSystem(midway.Config{
		Nodes:     len(addrs),
		Strategy:  strategy,
		TCPAddrs:  addrs,
		TCPNodeID: *node,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("mesh complete; running %q for %d rounds", *workload, *rounds)

	switch *workload {
	case "ring":
		err = runRing(sys, len(addrs), *rounds)
	case "exchange":
		err = runExchange(sys, len(addrs), *rounds)
	default:
		log.Fatalf("unknown workload %q", *workload)
	}
	if err != nil {
		log.Fatal(err)
	}

	st := sys.TotalStats()
	fmt.Printf("node %d done: simulated %.3f s, %d messages, %d KB moved\n",
		*node, sys.ExecutionSeconds(), st.Messages, st.MessageBytes/1024)
}

// runRing passes a lock-guarded counter around the nodes; every node
// increments it rounds times and the total is verified at the end.
func runRing(sys *midway.System, nodes, rounds int) error {
	counter := sys.MustAlloc("counter", 8, 8)
	lock := sys.NewLock("counter", midway.RangeAt(counter, 8))
	done := sys.NewBarrier("done")
	return sys.Run(func(p *midway.Proc) {
		for i := 0; i < rounds; i++ {
			p.Acquire(lock)
			p.WriteU64(counter, p.ReadU64(counter)+1)
			p.Release(lock)
		}
		p.Barrier(done)
		p.AcquireShared(lock)
		got := p.ReadU64(counter)
		p.Release(lock)
		// The final barrier keeps every process (and its protocol
		// handler) alive until all verifications are complete.
		p.Barrier(done)
		want := uint64(nodes * rounds)
		if got != want {
			panic(fmt.Sprintf("node %d: counter = %d, want %d", p.ID(), got, want))
		}
	})
}

// runExchange publishes per-node values through a bound barrier and
// verifies everyone sees everyone.
func runExchange(sys *midway.System, nodes, rounds int) error {
	slots := sys.AllocU64("slots", nodes, 8)
	bar := sys.NewBarrier("exchange", slots.Range())
	parts := make([][]midway.Range, nodes)
	for i := range parts {
		parts[i] = []midway.Range{slots.Slice(i, i+1)}
	}
	sys.SetBarrierParts(bar, parts)
	return sys.Run(func(p *midway.Proc) {
		me := p.ID()
		for r := 1; r <= rounds; r++ {
			slots.Set(p, me, uint64(me*1_000_000+r))
			p.Barrier(bar)
			for j := 0; j < nodes; j++ {
				if got := slots.Get(p, j); got != uint64(j*1_000_000+r) {
					panic(fmt.Sprintf("node %d round %d: slot %d = %d", me, r, j, got))
				}
			}
			p.Barrier(bar)
		}
	})
}
