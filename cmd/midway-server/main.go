// Command midway-server hosts one node of a multi-process DSM deployment.
// Start one instance per node — on one machine or several — each with the
// same address list and its own node id; the processes mesh over TCP and
// run the selected SPMD workload together.
//
// Usage:
//
//	midway-server -node <id> -addrs host0:port0,host1:port1,...
//	              [-strategy rt|vm|blast|twin] [-workload ring|exchange]
//	              [-rounds 100] [-fault spec] [-reliable[=spec]]
//	              [-heartbeat 20ms] [-suspect 120ms]
//	              [-trace FILE] [-trace-format text|jsonl|chrome]
//
// Example (three nodes on one machine, three shells):
//
//	midway-server -node 0 -addrs :9700,:9701,:9702
//	midway-server -node 1 -addrs :9700,:9701,:9702
//	midway-server -node 2 -addrs :9700,:9701,:9702
//
// With -heartbeat the process monitors its peers: a peer silent past the
// suspicion window (or one whose process died) is declared crashed and the
// run aborts with a diagnostic naming it — multi-process deployments have
// no global view to recover from, so they always abort.  Exit status: 0 on
// success or clean drain, 1 on a run failure, 2 on usage errors, 3 when a
// peer crash aborted the run, 4 when a drain was forced into an abort.
//
// SIGINT/SIGTERM shut the process down gracefully: the transport is
// closed (peers see this node die), the trace sink is flushed, and the
// process exits nonzero.  A second signal exits immediately.
//
// SIGUSR1 requests a graceful drain instead: this node raises a drain
// flag inside the workload's next critical section (or barrier round),
// every peer observes the flag at its own next release boundary, and the
// whole mesh stops at the same round — partial results verified, exit 0.
// A terminate signal (or a second SIGUSR1) received after a drain was
// requested forces the abort path above and exits 4 instead of 130, so
// scripts can tell a clean drain from an abandoned one.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"midway"
)

// draining is set by the SIGUSR1 handler; the workloads poll it at
// acquire boundaries and propagate it to peers through lock-bound data,
// so the whole mesh stops at the same release boundary.  aborted records
// that a forced shutdown interrupted a requested drain: the main
// goroutine then exits 4 instead of 1 when the run unwinds.
var (
	draining atomic.Bool
	aborted  atomic.Bool
)

// reliableFlag is a boolean flag that also accepts a tuning spec:
// -reliable turns the layer on with defaults, -reliable=initial=10ms,...
// turns it on and tunes it.
type reliableFlag struct {
	on   bool
	spec string
}

func (f *reliableFlag) String() string   { return f.spec }
func (f *reliableFlag) IsBoolFlag() bool { return true }
func (f *reliableFlag) Set(s string) error {
	switch s {
	case "true", "":
		f.on = true
	case "false":
		f.on = false
		f.spec = ""
	default:
		f.on = true
		f.spec = s
	}
	return nil
}

func main() {
	node := flag.Int("node", -1, "this process's node id")
	addrList := flag.String("addrs", "", "comma-separated node addresses, indexed by node id")
	strategyName := flag.String("strategy", "rt", "write detection: rt, vm, blast, twin")
	workload := flag.String("workload", "ring", "workload: ring (lock-passed counter), exchange (bound barrier)")
	rounds := flag.Int("rounds", 100, "workload rounds")
	faultSpec := flag.String("fault", "",
		"inject deterministic transport faults, e.g. drop=0.05,seed=7 or crash=1,crashafter=50 (implies reliable delivery)")
	var reliable reliableFlag
	flag.Var(&reliable, "reliable",
		"interpose the reliable delivery layer; optionally tune it, e.g. -reliable=initial=10ms,max=200ms,giveup=10,jitter=0.2,seed=7")
	heartbeat := flag.Duration("heartbeat", 0,
		"monitor peer liveness with heartbeats at this period (0 = off)")
	suspect := flag.Duration("suspect", 0,
		"declare a peer crashed after this much silence (0 = six heartbeat periods)")
	traceFile := flag.String("trace", "", "write protocol events to this file (\"-\" = stderr)")
	traceFormat := flag.String("trace-format", "text",
		"trace encoding: text (one line per event), jsonl (midway-trace input), chrome (chrome://tracing)")
	flag.Parse()

	addrs := strings.Split(*addrList, ",")
	if *node < 0 || *addrList == "" || *node >= len(addrs) {
		fmt.Fprintln(os.Stderr, "midway-server: -node and -addrs are required; see -h")
		os.Exit(2)
	}
	strategy, err := midway.ParseStrategy(*strategyName)
	if err != nil {
		log.Fatal(err)
	}

	cfg := midway.Config{
		Nodes:        len(addrs),
		Strategy:     strategy,
		TCPAddrs:     addrs,
		TCPNodeID:    *node,
		FaultSpec:    *faultSpec,
		Reliable:     reliable.on,
		ReliableSpec: reliable.spec,
		Heartbeat:    *heartbeat,
		SuspectAfter: *suspect,
	}
	var traceOut *os.File
	if *traceFile != "" {
		cfg.TraceFormat = *traceFormat
		if *traceFile == "-" {
			cfg.Trace = os.Stderr
		} else {
			f, err := os.Create(*traceFile)
			if err != nil {
				log.Fatalf("opening trace file: %v", err)
			}
			traceOut = f
			cfg.Trace = f
		}
	}
	// The trace sink is flushed on every exit path, including signals;
	// the signal goroutine and the main goroutine may both reach it.
	var traceOnce sync.Once
	flushTrace := func() {
		traceOnce.Do(func() {
			if traceOut == nil {
				return
			}
			if err := traceOut.Close(); err != nil {
				log.Printf("closing trace file: %v", err)
			}
		})
	}

	// Install the handler before the mesh join: NewSystem blocks until
	// every peer connects, and an operator must be able to abandon a
	// half-formed mesh cleanly too.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM, syscall.SIGUSR1)
	sysc := make(chan *midway.System, 1)
	go func() {
		var s os.Signal
		for {
			s = <-sigc
			if s != syscall.SIGUSR1 || draining.Load() {
				break
			}
			// First SIGUSR1: request a graceful drain and keep running.
			// The workload raises the mesh-wide stop flag at its next
			// acquire; the main goroutine exits 0 when the run completes.
			draining.Store(true)
			log.Printf("received %v; draining at the next release boundary", s)
		}
		// Forced shutdown: a terminate signal, or a repeated SIGUSR1
		// escalating a drain that has not completed.
		code := 130
		if draining.Load() {
			code = 4
			aborted.Store(true)
			log.Printf("received %v during drain; forcing abort", s)
		}
		select {
		case sys := <-sysc:
			log.Printf("received %v; closing transport and shutting down", s)
			// Closing the transport fails in-flight protocol operations,
			// so Run unwinds and the main goroutine flushes and exits.
			// Peers see this node go silent, exactly as a crash would.
			sys.Close()
			s = <-sigc
			log.Printf("received %v again; exiting immediately", s)
		default:
			log.Printf("received %v while joining the mesh; exiting", s)
		}
		flushTrace()
		os.Exit(code)
	}()

	log.Printf("node %d of %d joining mesh at %s", *node, len(addrs), addrs[*node])
	sys, err := midway.NewSystem(cfg)
	if err != nil {
		flushTrace()
		log.Fatal(err)
	}
	sysc <- sys

	log.Printf("mesh complete; running %q for %d rounds", *workload, *rounds)
	switch *workload {
	case "ring":
		err = runRing(sys, len(addrs), *rounds)
	case "exchange":
		err = runExchange(sys, len(addrs), *rounds)
	default:
		flushTrace()
		log.Fatalf("unknown workload %q", *workload)
	}
	flushTrace()
	if err != nil {
		if aborted.Load() {
			log.Printf("drain forced into abort: %v", err)
			os.Exit(4)
		}
		var ce *midway.CrashError
		if errors.As(err, &ce) {
			log.Printf("peer crash aborted the run: %v", err)
			os.Exit(3)
		}
		log.Fatal(err)
	}

	if draining.Load() {
		log.Printf("drained cleanly at a release boundary")
	}
	st := sys.TotalStats()
	fmt.Printf("node %d done: simulated %.3f s, %d messages, %d KB moved\n",
		*node, sys.ExecutionSeconds(), st.Messages, st.MessageBytes/1024)
}

// runRing passes a lock-guarded counter around the nodes; every node
// increments it rounds times and the total is verified at the end.  A
// stop word and per-node contribution slots ride under the same lock: a
// draining node sets the stop word in its critical section, every peer
// observes it at its own next acquire, and the verification sums the
// contributions actually made — so a drained run still verifies.
func runRing(sys *midway.System, nodes, rounds int) error {
	counter := sys.MustAlloc("counter", 8, 8)
	stop := sys.MustAlloc("stop", 8, 8)
	contrib := sys.AllocU64("contrib", nodes, 8)
	lock := sys.NewLock("counter",
		midway.RangeAt(counter, 8), midway.RangeAt(stop, 8), contrib.Range())
	done := sys.NewBarrier("done")
	return sys.Run(func(p *midway.Proc) {
		me := p.ID()
		var mine uint64
		for i := 0; i < rounds; i++ {
			p.Acquire(lock)
			if draining.Load() {
				p.WriteU64(stop, 1)
			}
			if p.ReadU64(stop) != 0 {
				p.Release(lock)
				break
			}
			p.WriteU64(counter, p.ReadU64(counter)+1)
			mine++
			contrib.Set(p, me, mine)
			p.Release(lock)
		}
		p.Barrier(done)
		p.AcquireShared(lock)
		got := p.ReadU64(counter)
		var want uint64
		for j := 0; j < nodes; j++ {
			want += contrib.Get(p, j)
		}
		p.Release(lock)
		// The final barrier keeps every process (and its protocol
		// handler) alive until all verifications are complete.
		p.Barrier(done)
		if got != want {
			panic(fmt.Sprintf("node %d: counter = %d, want %d", p.ID(), got, want))
		}
	})
}

// runExchange publishes per-node values through a bound barrier and
// verifies everyone sees everyone.  Per-node drain flags travel with the
// same barrier: a draining node publishes its flag alongside its value,
// every node sees the identical flag set after the crossing, and the
// whole mesh breaks after the same round.
func runExchange(sys *midway.System, nodes, rounds int) error {
	slots := sys.AllocU64("slots", nodes, 8)
	flags := sys.AllocU64("drain", nodes, 8)
	bar := sys.NewBarrier("exchange", slots.Range(), flags.Range())
	parts := make([][]midway.Range, nodes)
	for i := range parts {
		parts[i] = []midway.Range{slots.Slice(i, i+1), flags.Slice(i, i+1)}
	}
	sys.SetBarrierParts(bar, parts)
	return sys.Run(func(p *midway.Proc) {
		me := p.ID()
		for r := 1; r <= rounds; r++ {
			slots.Set(p, me, uint64(me*1_000_000+r))
			if draining.Load() {
				flags.Set(p, me, 1)
			}
			p.Barrier(bar)
			stopping := false
			for j := 0; j < nodes; j++ {
				if got := slots.Get(p, j); got != uint64(j*1_000_000+r) {
					panic(fmt.Sprintf("node %d round %d: slot %d = %d", me, r, j, got))
				}
				if flags.Get(p, j) != 0 {
					stopping = true
				}
			}
			p.Barrier(bar)
			if stopping {
				break
			}
		}
	})
}
