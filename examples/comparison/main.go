// Comparison: the paper's experiment in miniature.  One workload — a
// sparsely-written shared table guarded by per-entry locks — run under all
// four write-detection strategies, printing execution time, data moved,
// and the primitive-operation counts that explain the differences.
//
// The workload writes a few words of each 512-byte entry per round, the
// access pattern where the dirtybit history shines: RT ships only the
// modified lines, VM ships per-incarnation diffs (re-sending data written
// in several incarnations), Blast ships whole entries, and TwinDiff pays
// to diff unmodified data.  Run it with:
//
//	go run ./examples/comparison [-entries 64] [-rounds 20] [-procs 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"midway"
)

func main() {
	entries := flag.Int("entries", 64, "table entries")
	rounds := flag.Int("rounds", 20, "update rounds")
	procs := flag.Int("procs", 4, "processors")
	flag.Parse()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tsim time (s)\tdata moved (KB)\tdirtybits set\tfaults\tpages diffed\tlock transfers")
	for _, strategy := range []midway.Strategy{midway.RT, midway.VM, midway.Blast, midway.TwinDiff} {
		secs, st, err := run(strategy, *entries, *rounds, *procs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%v\t%.3f\t%.1f\t%d\t%d\t%d\t%d\n",
			strategy, secs, float64(st.BytesTransferred)/1024,
			st.DirtybitsSet, st.WriteFaults, st.PagesDiffed, st.LockTransfers)
	}
	tw.Flush()
	fmt.Println("\nThe paper's result in miniature: the timestamped dirtybits (RT) move the")
	fmt.Println("least data and collect it cheapest; page diffing (VM) re-ships old")
	fmt.Println("incarnations; Blast ships everything; TwinDiff diffs everything.")
}

// run executes the workload under one strategy and returns the simulated
// time and total counters.
func run(strategy midway.Strategy, entries, rounds, procs int) (float64, statsLike, error) {
	sys, err := midway.NewSystem(midway.Config{Nodes: procs, Strategy: strategy})
	if err != nil {
		return 0, statsLike{}, err
	}
	const entryDoubles = 64 // 512-byte entries
	table := sys.AllocF64("table", entries*entryDoubles, 8)
	locks := make([]midway.LockID, entries)
	for e := 0; e < entries; e++ {
		locks[e] = sys.NewLock(fmt.Sprintf("entry%d", e),
			table.Slice(e*entryDoubles, (e+1)*entryDoubles))
	}
	step := sys.NewBarrier("step")

	err = sys.Run(func(p *midway.Proc) {
		me := p.ID()
		for r := 0; r < rounds; r++ {
			// Each processor updates a rotating subset of entries,
			// touching only 4 of the 64 doubles in each.
			for e := me; e < entries; e += procs {
				idx := (e + r) % entries
				p.Acquire(locks[idx])
				base := idx * entryDoubles
				for w := 0; w < 4; w++ {
					slot := base + (r+w)%entryDoubles
					table.Set(p, slot, table.Get(p, slot)+1)
				}
				p.Release(locks[idx])
				p.Compute(5000)
			}
			p.Barrier(step)
		}
	})
	if err != nil {
		return 0, statsLike{}, err
	}
	t := sys.TotalStats()
	return sys.ExecutionSeconds(), statsLike{
		BytesTransferred: t.BytesTransferred,
		DirtybitsSet:     t.DirtybitsSet,
		WriteFaults:      t.WriteFaults,
		PagesDiffed:      t.PagesDiffed,
		LockTransfers:    t.LockTransfers,
	}, nil
}

// statsLike carries just the counters the table prints.
type statsLike struct {
	BytesTransferred uint64
	DirtybitsSet     uint64
	WriteFaults      uint64
	PagesDiffed      uint64
	LockTransfers    uint64
}
