// Taskqueue: dynamic work distribution with lock rebinding, the pattern
// behind the paper's quicksort application.
//
// A shared task queue hands out chunks of a shared array; each chunk's
// data is guarded by a lock drawn from a pool and rebound to the chunk's
// address range when the task is created, so the data travels with the
// lock to whichever processor picks the task up.  The work here is a
// Mandelbrot-style escape-time computation per element — embarrassingly
// parallel compute with all coordination through the DSM.  Run it with:
//
//	go run ./examples/taskqueue [-n 4096] [-chunk 256] [-procs 4] [-strategy vm]
package main

import (
	"flag"
	"fmt"
	"log"

	"midway"
)

func main() {
	n := flag.Int("n", 4096, "number of elements")
	chunk := flag.Int("chunk", 256, "task size")
	procs := flag.Int("procs", 4, "processors")
	strategyName := flag.String("strategy", "vm", "write detection: rt, vm, blast, twin")
	flag.Parse()

	strategy, err := midway.ParseStrategy(*strategyName)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := midway.NewSystem(midway.Config{Nodes: *procs, Strategy: strategy})
	if err != nil {
		log.Fatal(err)
	}

	out := sys.AllocU32("iterations", *n, 4)
	tasks := (*n + *chunk - 1) / *chunk
	// Queue: slot 0 is the next task index; one pool lock per in-flight
	// chunk, reused round-robin.
	queue := sys.AllocU32("queue", 1, 4)
	qlock := sys.NewLock("queue", queue.Range())
	const pool = 16
	chunkLock := make([]midway.LockID, pool)
	for i := range chunkLock {
		chunkLock[i] = sys.NewLock(fmt.Sprintf("chunk%d", i))
	}
	done := sys.NewBarrier("done", out.Range())
	// Every processor records which chunks it computed for the final
	// barrier parts (only the Blast strategy needs this).
	owned := make([][]midway.Range, *procs)
	sys.SetBarrierParts(done, owned)

	err = sys.Run(func(p *midway.Proc) {
		me := p.ID()
		for {
			// Claim the next task.
			p.Acquire(qlock)
			t := int(queue.Get(p, 0))
			if t < tasks {
				queue.Set(p, 0, uint32(t+1))
			}
			p.Release(qlock)
			if t >= tasks {
				break
			}
			lo := t * *chunk
			hi := min(lo+*chunk, *n)
			rg := out.Slice(lo, hi)

			// Rebind the pool lock to this chunk and compute under it.
			li := chunkLock[t%pool]
			p.Acquire(li)
			p.Rebind(li, rg)
			for i := lo; i < hi; i++ {
				out.Set(p, i, escapeTime(i, *n))
				p.Compute(120)
			}
			p.Release(li)
			owned[me] = append(owned[me], rg)
		}
		p.Barrier(done)
	})
	if err != nil {
		log.Fatal(err)
	}

	var sum uint64
	maxV := uint32(0)
	for i := 0; i < *n; i++ {
		v := sys.ReadFinalU32(out.At(i))
		sum += uint64(v)
		if v > maxV {
			maxV = v
		}
	}
	fmt.Printf("computed %d elements in %d tasks on %d procs (%s)\n", *n, tasks, *procs, strategy)
	fmt.Printf("  iteration sum: %d, max: %d\n", sum, maxV)
	fmt.Printf("  simulated time: %.3f s, lock transfers: %d, data moved: %.1f KB\n",
		sys.ExecutionSeconds(), sys.TotalStats().LockTransfers,
		float64(sys.TotalStats().BytesTransferred)/1024)
}

// escapeTime maps element i to a point in the complex plane and returns
// its Mandelbrot escape iteration count.
func escapeTime(i, n int) uint32 {
	cx := -2.0 + 2.5*float64(i%64)/64
	cy := -1.25 + 2.5*float64(i/64)/(float64(n)/64)
	var x, y float64
	for it := uint32(0); it < 64; it++ {
		x, y = x*x-y*y+cx, 2*x*y+cy
		if x*x+y*y > 4 {
			return it
		}
	}
	return 64
}
