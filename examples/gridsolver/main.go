// Gridsolver: Jacobi heat diffusion on a shared 2-D grid, the style of
// workload the paper's sor application represents.
//
// Each processor owns a contiguous band of rows.  Only the rows at
// partition edges are shared: they are bound to a barrier that makes them
// consistent at every crossing, so interior updates never touch the
// network.  Run it with:
//
//	go run ./examples/gridsolver [-n 128] [-iters 50] [-procs 4] [-strategy rt]
package main

import (
	"flag"
	"fmt"
	"log"

	"midway"
)

func main() {
	n := flag.Int("n", 128, "grid dimension")
	iters := flag.Int("iters", 50, "iterations")
	procs := flag.Int("procs", 4, "processors")
	strategyName := flag.String("strategy", "rt", "write detection: rt, vm, blast, twin")
	flag.Parse()

	strategy, err := midway.ParseStrategy(*strategyName)
	if err != nil {
		log.Fatal(err)
	}
	if *iters%2 == 1 {
		*iters++ // an even count leaves the result in the cur grid
	}
	sys, err := midway.NewSystem(midway.Config{Nodes: *procs, Strategy: strategy})
	if err != nil {
		log.Fatal(err)
	}

	m := *n
	// Two grids, swapped every iteration (Jacobi), 8-byte lines.
	cur := sys.AllocF64("grid.cur", m*m, 8)
	next := sys.AllocF64("grid.next", m*m, 8)

	// Hot left edge, cold elsewhere.
	for i := 0; i < m; i++ {
		cur.Preset(sys, i*m, 100)
		next.Preset(sys, i*m, 100)
	}

	// Partition rows; bind each processor's edge rows (in both grids) to
	// the step barrier.
	rowsPer := (m-2)/(*procs) + 1
	var edges []midway.Range
	parts := make([][]midway.Range, *procs)
	bounds := func(pr int) (int, int) {
		lo := 1 + pr*rowsPer
		hi := min(lo+rowsPer, m-1)
		return lo, hi
	}
	for pr := 0; pr < *procs; pr++ {
		lo, hi := bounds(pr)
		if lo >= hi {
			continue
		}
		for _, arr := range []midway.F64Array{cur, next} {
			for _, row := range []int{lo, hi - 1} {
				rg := arr.Slice(row*m, (row+1)*m)
				edges = append(edges, rg)
				parts[pr] = append(parts[pr], rg)
			}
		}
	}
	step := sys.NewBarrier("step", edges...)
	sys.SetBarrierParts(step, parts)
	collect := sys.NewBarrier("collect", cur.Range())
	cparts := make([][]midway.Range, *procs)
	for pr := 0; pr < *procs; pr++ {
		lo, hi := bounds(pr)
		if lo < hi {
			cparts[pr] = []midway.Range{cur.Slice(lo*m, hi*m)}
		}
	}
	sys.SetBarrierParts(collect, cparts)

	err = sys.Run(func(p *midway.Proc) {
		lo, hi := bounds(p.ID())
		src, dst := cur, next
		for it := 0; it < *iters; it++ {
			for i := lo; i < hi; i++ {
				for j := 1; j < m-1; j++ {
					v := 0.25 * (src.Get(p, (i-1)*m+j) + src.Get(p, (i+1)*m+j) +
						src.Get(p, i*m+j-1) + src.Get(p, i*m+j+1))
					p.Compute(40)
					dst.Set(p, i*m+j, v)
				}
			}
			p.Barrier(step)
			src, dst = dst, src
		}
		// An even iteration count leaves the result in cur.
		p.Barrier(collect)
	})
	if err != nil {
		log.Fatal(err)
	}

	mid := m / 2
	fmt.Printf("after %d iterations on a %dx%d grid (%d procs, %s):\n",
		*iters, m, m, *procs, strategy)
	fmt.Printf("  temperature profile along the middle row (hot left edge at 100):\n  ")
	for _, j := range []int{0, 1, 2, 4, 8, m / 4, m / 2} {
		fmt.Printf(" col%-3d=%-8.4g", j, sys.ReadFinalF64(cur.At(mid*m+j)))
	}
	fmt.Println()
	fmt.Printf("  simulated time: %.3f s, data moved: %.1f KB\n",
		sys.ExecutionSeconds(), float64(sys.TotalStats().BytesTransferred)/1024)
}
