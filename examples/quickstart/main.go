// Quickstart: a lock-guarded shared counter on a 4-processor DSM.
//
// Shared memory is allocated from the System, bound to a lock, and
// accessed through each processor's Proc handle — the software analogue of
// Midway's compiler-instrumented stores.  Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"midway"
)

func main() {
	sys, err := midway.NewSystem(midway.Config{Nodes: 4, Strategy: midway.RT})
	if err != nil {
		log.Fatal(err)
	}

	// One 8-byte counter, guarded by a lock bound to it.  The cache line
	// size (8 bytes) is the unit of coherency for write detection.
	counter := sys.MustAlloc("counter", 8, 8)
	lock := sys.NewLock("counter", midway.RangeAt(counter, 8))
	done := sys.NewBarrier("done")

	const perProc = 1000
	err = sys.Run(func(p *midway.Proc) {
		for i := 0; i < perProc; i++ {
			p.Acquire(lock) // entry consistency: the counter is now fresh
			p.WriteU64(counter, p.ReadU64(counter)+1)
			p.Release(lock)
		}
		p.Barrier(done)
		// Pull the final value everywhere so processor 0 can report it.
		p.AcquireShared(lock)
		p.Release(lock)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("counter = %d (want %d)\n", sys.ReadFinalU64(counter), 4*perProc)
	fmt.Printf("simulated time on the 25 MHz reference machine: %.3f s\n", sys.ExecutionSeconds())
	st := sys.TotalStats()
	fmt.Printf("dirtybits set: %d, lock transfers: %d, data moved: %d KB\n",
		st.DirtybitsSet, st.LockTransfers, st.BytesTransferred/1024)
}
