module midway

go 1.24
