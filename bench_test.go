// Benchmarks regenerating the paper's evaluation, one per table and
// figure.  Two kinds of measurement coexist here:
//
//   - Table 1 benchmarks measure the real cost of this implementation's
//     primitive operations (ns/op on the host), the analogue of the
//     paper's microbenchmarks on the DECstation.
//
//   - The Figure 2 / Table 2-5 / Figure 3-4 benchmarks run the
//     applications on the simulated DSM and report the paper's quantities
//     as custom metrics (sim-seconds, KB transferred, per-processor
//     primitive counts, derived milliseconds).
//
// Run with: go test -bench=. -benchmem
package midway_test

import (
	"strings"
	"sync"
	"testing"

	"midway"
	"midway/internal/bench"
	"midway/internal/cost"
	"midway/internal/diff"
	"midway/internal/memory"
	"midway/internal/vmem"
)

// Table 1: primitive operations of this implementation.

// BenchmarkTable1DirtybitSet measures the RT write-trapping path: an
// instrumented doubleword store including the dirtybit template.
func BenchmarkTable1DirtybitSet(b *testing.B) {
	sys, err := midway.NewSystem(midway.Config{Nodes: 1, Strategy: midway.RT})
	if err != nil {
		b.Fatal(err)
	}
	arr := sys.AllocU64("bench", 4096, 8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sys.Run(func(p *midway.Proc) { //nolint:errcheck
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arr.Set(p, i&4095, uint64(i))
			}
			b.StopTimer()
		})
	}()
	<-done
}

// BenchmarkTable1UninstrumentedStore is the baseline store without write
// detection (the standalone configuration).
func BenchmarkTable1UninstrumentedStore(b *testing.B) {
	sys, err := midway.NewSystem(midway.Config{Nodes: 1, Strategy: midway.Standalone})
	if err != nil {
		b.Fatal(err)
	}
	arr := sys.AllocU64("bench", 4096, 8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sys.Run(func(p *midway.Proc) { //nolint:errcheck
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arr.Set(p, i&4095, uint64(i))
			}
			b.StopTimer()
		})
	}()
	<-done
}

// BenchmarkTable1VMAmortizedStore measures the VM store path after the
// page has faulted (the amortized fast path).
func BenchmarkTable1VMAmortizedStore(b *testing.B) {
	sys, err := midway.NewSystem(midway.Config{Nodes: 1, Strategy: midway.VM})
	if err != nil {
		b.Fatal(err)
	}
	arr := sys.AllocU64("bench", 4096, 8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sys.Run(func(p *midway.Proc) { //nolint:errcheck
			arr.Set(p, 0, 1) // take the faults up front
			for i := 0; i < 4096; i += 512 {
				arr.Set(p, i, 1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arr.Set(p, i&4095, uint64(i))
			}
			b.StopTimer()
		})
	}()
	<-done
}

// BenchmarkTable1PageFault measures the write-fault service path: twin
// copy plus protection changes.
func BenchmarkTable1PageFault(b *testing.B) {
	l := memory.NewLayout(20)
	a, err := l.Alloc("pages", 1<<18, memory.Shared, 3)
	if err != nil {
		b.Fatal(err)
	}
	inst := memory.NewInstance(l)
	tbl := vmem.NewTable(inst)
	pg := vmem.PageIndex(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.EnsureWritable(a, 8)
		tbl.Clean(pg)
	}
}

// BenchmarkTable1PageDiffClean diffs an unmodified page (the paper's
// "none of the data changed" case).
func BenchmarkTable1PageDiffClean(b *testing.B) {
	cur := make([]byte, vmem.PageSize)
	twin := make([]byte, vmem.PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diff.Compute(cur, twin)
	}
}

// BenchmarkTable1PageDiffWorst diffs the alternating-word worst case.
func BenchmarkTable1PageDiffWorst(b *testing.B) {
	cur := make([]byte, vmem.PageSize)
	twin := make([]byte, vmem.PageSize)
	for w := 0; w < vmem.PageSize/4; w += 2 {
		cur[w*4] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diff.Compute(cur, twin)
	}
}

// BenchmarkTable1BlockCopyKB measures copying 1 KB (the twin-update
// primitive).
func BenchmarkTable1BlockCopyKB(b *testing.B) {
	src := make([]byte, 1024)
	dst := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(dst, src)
	}
}

// Application-level benchmarks: Figure 2 and Table 2.

// benchEval caches one small-scale evaluation for the derived-table
// benchmarks.
var (
	benchEvalOnce sync.Once
	benchEvalVal  *bench.Evaluation
	benchEvalErr  error
)

func benchEval(b *testing.B) *bench.Evaluation {
	b.Helper()
	benchEvalOnce.Do(func() {
		benchEvalVal, benchEvalErr = bench.RunEvaluation(8, bench.ScaleSmall,
			[]midway.Strategy{midway.RT, midway.VM, midway.Blast, midway.TwinDiff}, true, 0)
	})
	if benchEvalErr != nil {
		b.Fatal(benchEvalErr)
	}
	return benchEvalVal
}

// benchmarkApp runs one application/strategy pair per iteration and
// reports the paper's Figure 2 quantities as metrics.
func benchmarkApp(b *testing.B, app string, strat midway.Strategy) {
	var simSecs, kb float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunApp(app, midway.Config{Nodes: 8, Strategy: strat}, bench.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		simSecs = res.Seconds
		kb = res.KBTransferredTotal()
	}
	b.ReportMetric(simSecs, "sim-sec")
	b.ReportMetric(kb, "KB-moved")
}

func BenchmarkFigure2Water_RT(b *testing.B)     { benchmarkApp(b, "water", midway.RT) }
func BenchmarkFigure2Water_VM(b *testing.B)     { benchmarkApp(b, "water", midway.VM) }
func BenchmarkFigure2Quicksort_RT(b *testing.B) { benchmarkApp(b, "quicksort", midway.RT) }
func BenchmarkFigure2Quicksort_VM(b *testing.B) { benchmarkApp(b, "quicksort", midway.VM) }
func BenchmarkFigure2Matrix_RT(b *testing.B)    { benchmarkApp(b, "matrix", midway.RT) }
func BenchmarkFigure2Matrix_VM(b *testing.B)    { benchmarkApp(b, "matrix", midway.VM) }
func BenchmarkFigure2SOR_RT(b *testing.B)       { benchmarkApp(b, "sor", midway.RT) }
func BenchmarkFigure2SOR_VM(b *testing.B)       { benchmarkApp(b, "sor", midway.VM) }
func BenchmarkFigure2Cholesky_RT(b *testing.B)  { benchmarkApp(b, "cholesky", midway.RT) }
func BenchmarkFigure2Cholesky_VM(b *testing.B)  { benchmarkApp(b, "cholesky", midway.VM) }

// BenchmarkFigure2Standalone reports the uninstrumented baseline bars.
func BenchmarkFigure2Standalone(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		total = 0
		for _, app := range bench.AppNames {
			res, err := bench.RunApp(app, midway.Config{Nodes: 1, Strategy: midway.Standalone}, bench.ScaleSmall)
			if err != nil {
				b.Fatal(err)
			}
			total += res.Seconds
		}
	}
	b.ReportMetric(total, "sim-sec-total")
}

// BenchmarkTable2Counts reports the per-processor primitive counts for
// every application under both systems.
func BenchmarkTable2Counts(b *testing.B) {
	var ev *bench.Evaluation
	for i := 0; i < b.N; i++ {
		var err error
		ev, err = bench.RunEvaluation(8, bench.ScaleSmall,
			[]midway.Strategy{midway.RT, midway.VM}, false, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, app := range bench.AppNames {
		rt, vm := ev.RT(app).Total, ev.VM(app).Total
		b.ReportMetric(float64(rt.DirtybitsSet), app+"-rt-sets")
		b.ReportMetric(float64(vm.WriteFaults), app+"-vm-faults")
		b.ReportMetric(float64(vm.PagesDiffed), app+"-vm-diffs")
	}
}

// Derived tables and figures (counts × costs).

func BenchmarkTable3Trapping(b *testing.B) {
	ev := benchEval(b)
	m := cost.Default()
	var rows []bench.Table3Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table3(ev, m)
	}
	for _, r := range rows {
		b.ReportMetric(r.RTMillis, r.App+"-rt-ms")
		b.ReportMetric(r.VMMillis, r.App+"-vm-ms")
	}
}

func BenchmarkTable4Collection(b *testing.B) {
	ev := benchEval(b)
	m := cost.Default()
	var rows []bench.Table4Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table4(ev, m)
	}
	for _, r := range rows {
		b.ReportMetric(r.RTTotal, r.App+"-rt-ms")
		b.ReportMetric(r.VMTotal, r.App+"-vm-ms")
	}
}

func BenchmarkTable5MemRefs(b *testing.B) {
	ev := benchEval(b)
	var rows []bench.Table5Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table5(ev)
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.RTTotal), r.App+"-rt-krefs")
		b.ReportMetric(float64(r.VMTotal), r.App+"-vm-krefs")
	}
}

func BenchmarkFigure3TrappingSweep(b *testing.B) {
	ev := benchEval(b)
	m := cost.Default()
	var rows []bench.FaultSweepRow
	for i := 0; i < b.N; i++ {
		rows = bench.Figure3(ev, m)
	}
	for _, r := range rows {
		b.ReportMetric(r.BreakEvenMicros, r.App+"-breakeven-us")
	}
}

func BenchmarkFigure4TotalSweep(b *testing.B) {
	ev := benchEval(b)
	m := cost.Default()
	var rows []bench.FaultSweepRow
	for i := 0; i < b.N; i++ {
		rows = bench.Figure4(ev, m)
	}
	for _, r := range rows {
		b.ReportMetric(r.BreakEvenMicros, r.App+"-breakeven-us")
	}
}

// BenchmarkUniprocessor reproduces the Section 4 uniprocessor comparison.
func BenchmarkUniprocessor(b *testing.B) {
	var row bench.UniprocessorRow
	for i := 0; i < b.N; i++ {
		var err error
		row, err = bench.Uniprocessor("quicksort", bench.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.RTSecs, "rt-sim-sec")
	b.ReportMetric(row.VMSecs, "vm-sim-sec")
	b.ReportMetric(row.StandaloneSecs, "standalone-sim-sec")
}

// BenchmarkUntargetted measures the Section 3.5 dirtybit organizations
// for untargetted models at a representative sparse dirty fraction.
func BenchmarkUntargetted(b *testing.B) {
	var rows []bench.UntargettedRow
	for i := 0; i < b.N; i++ {
		rows = bench.UntargettedSweep(64*1024, 7)
	}
	for _, r := range rows {
		if r.DirtyFraction == 0.01 && !r.Sequential {
			for scheme, us := range r.Micros {
				b.ReportMetric(us, strings.ReplaceAll(scheme, " ", "-")+"-us")
			}
		}
	}
}

// BenchmarkAblation compares all four strategies (Section 3.5).
func BenchmarkAblation(b *testing.B) {
	ev := benchEval(b)
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		rows = bench.Ablation(ev)
	}
	for _, r := range rows {
		for strat, mb := range r.MB {
			b.ReportMetric(mb, r.App+"-"+strat+"-MB")
		}
	}
}
