package midway

import (
	"fmt"
	"math"
)

// F64Array is a typed view over a shared allocation of float64 elements.
// It carries no per-processor state: the same value can be used from every
// Run instance, with all access going through the Proc handle.
type F64Array struct {
	base Addr
	n    int
}

// AllocF64 reserves a shared array of n float64 elements with the given
// cache line size in bytes.
func (s *System) AllocF64(name string, n int, lineSize uint32, opts ...AllocOption) F64Array {
	if n <= 0 {
		panic(fmt.Sprintf("midway: invalid array length %d", n))
	}
	base := s.MustAlloc(name, uint32(n)*8, lineSize, opts...)
	return F64Array{base: base, n: n}
}

// Len returns the element count.
func (a F64Array) Len() int { return a.n }

// At returns the address of element i.
func (a F64Array) At(i int) Addr {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("midway: index %d out of range [0,%d)", i, a.n))
	}
	return a.base + Addr(uint32(i)*8)
}

// Range returns the whole array's address range.
func (a F64Array) Range() Range { return Range{Addr: a.base, Size: uint32(a.n) * 8} }

// Slice returns the address range of elements [i, j).
func (a F64Array) Slice(i, j int) Range {
	if i < 0 || j > a.n || i > j {
		panic(fmt.Sprintf("midway: slice [%d,%d) out of range [0,%d]", i, j, a.n))
	}
	return Range{Addr: a.base + Addr(uint32(i)*8), Size: uint32(j-i) * 8}
}

// Get loads element i through the processor handle.
func (a F64Array) Get(p *Proc, i int) float64 { return p.ReadF64(a.At(i)) }

// Set stores element i through the processor handle (instrumented).
func (a F64Array) Set(p *Proc, i int, v float64) { p.WriteF64(a.At(i), v) }

// SetRange stores vs into elements [i, i+len(vs)) with one fused
// instrumented store (identical simulated cost to element-wise Set calls).
func (a F64Array) SetRange(p *Proc, i int, vs []float64) {
	if len(vs) == 0 {
		return
	}
	a.Slice(i, i+len(vs)) // bounds check
	p.WriteF64s(a.At(i), vs)
}

// Preset installs an initial value without trapping or counting.
func (a F64Array) Preset(s *System, i int, v float64) { s.PresetF64(a.At(i), v) }

// U64Array is a typed view over a shared allocation of uint64 elements.
type U64Array struct {
	base Addr
	n    int
}

// AllocU64 reserves a shared array of n uint64 elements with the given
// cache line size in bytes.
func (s *System) AllocU64(name string, n int, lineSize uint32, opts ...AllocOption) U64Array {
	if n <= 0 {
		panic(fmt.Sprintf("midway: invalid array length %d", n))
	}
	base := s.MustAlloc(name, uint32(n)*8, lineSize, opts...)
	return U64Array{base: base, n: n}
}

// Len returns the element count.
func (a U64Array) Len() int { return a.n }

// At returns the address of element i.
func (a U64Array) At(i int) Addr {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("midway: index %d out of range [0,%d)", i, a.n))
	}
	return a.base + Addr(uint32(i)*8)
}

// Range returns the whole array's address range.
func (a U64Array) Range() Range { return Range{Addr: a.base, Size: uint32(a.n) * 8} }

// Slice returns the address range of elements [i, j).
func (a U64Array) Slice(i, j int) Range {
	if i < 0 || j > a.n || i > j {
		panic(fmt.Sprintf("midway: slice [%d,%d) out of range [0,%d]", i, j, a.n))
	}
	return Range{Addr: a.base + Addr(uint32(i)*8), Size: uint32(j-i) * 8}
}

// Get loads element i through the processor handle.
func (a U64Array) Get(p *Proc, i int) uint64 { return p.ReadU64(a.At(i)) }

// Set stores element i through the processor handle (instrumented).
func (a U64Array) Set(p *Proc, i int, v uint64) { p.WriteU64(a.At(i), v) }

// SetRange stores vs into elements [i, i+len(vs)) with one fused
// instrumented store (identical simulated cost to element-wise Set calls).
func (a U64Array) SetRange(p *Proc, i int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	a.Slice(i, i+len(vs)) // bounds check
	p.WriteU64s(a.At(i), vs)
}

// Preset installs an initial value without trapping or counting.
func (a U64Array) Preset(s *System, i int, v uint64) { s.PresetU64(a.At(i), v) }

// U32Array is a typed view over a shared allocation of uint32 elements
// (the paper's integer applications store 32-bit words).
type U32Array struct {
	base Addr
	n    int
}

// AllocU32 reserves a shared array of n uint32 elements with the given
// cache line size in bytes.
func (s *System) AllocU32(name string, n int, lineSize uint32, opts ...AllocOption) U32Array {
	if n <= 0 {
		panic(fmt.Sprintf("midway: invalid array length %d", n))
	}
	base := s.MustAlloc(name, uint32(n)*4, lineSize, opts...)
	return U32Array{base: base, n: n}
}

// Len returns the element count.
func (a U32Array) Len() int { return a.n }

// At returns the address of element i.
func (a U32Array) At(i int) Addr {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("midway: index %d out of range [0,%d)", i, a.n))
	}
	return a.base + Addr(uint32(i)*4)
}

// Range returns the whole array's address range.
func (a U32Array) Range() Range { return Range{Addr: a.base, Size: uint32(a.n) * 4} }

// Slice returns the address range of elements [i, j).
func (a U32Array) Slice(i, j int) Range {
	if i < 0 || j > a.n || i > j {
		panic(fmt.Sprintf("midway: slice [%d,%d) out of range [0,%d]", i, j, a.n))
	}
	return Range{Addr: a.base + Addr(uint32(i)*4), Size: uint32(j-i) * 4}
}

// Get loads element i through the processor handle.
func (a U32Array) Get(p *Proc, i int) uint32 { return p.ReadU32(a.At(i)) }

// Set stores element i through the processor handle (instrumented).
func (a U32Array) Set(p *Proc, i int, v uint32) { p.WriteU32(a.At(i), v) }

// SetRange stores vs into elements [i, i+len(vs)) with one fused
// instrumented store (identical simulated cost to element-wise Set calls).
func (a U32Array) SetRange(p *Proc, i int, vs []uint32) {
	if len(vs) == 0 {
		return
	}
	a.Slice(i, i+len(vs)) // bounds check
	p.WriteU32s(a.At(i), vs)
}

// Preset installs an initial value without trapping or counting.
func (a U32Array) Preset(s *System, i int, v uint32) { s.PresetU32(a.At(i), v) }

func putF64(b []byte, v float64) { putU64(b, math.Float64bits(v)) }
