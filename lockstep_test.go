package midway_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"midway"
	"midway/internal/bench"
)

// These tests pin the lockstep engine's contract: the conservative
// parallel discrete-event core is a wall-clock optimization only.  Every
// simulated number — statistics, clocks, checksums, traces — must be
// byte-identical to the goroutine engine where the goroutine engine is
// itself deterministic, and byte-identical across runs and GOMAXPROCS
// settings everywhere (run the suite with -cpu 1,4 to exercise that).

// lockstepApps lists every application; all five must run under the
// lockstep engine.
var lockstepApps = []string{"water", "quicksort", "matrix", "sor", "cholesky"}

// TestLockstepMatchesGoroutineEngine: for every application whose
// goroutine-engine results are deterministic, the lockstep engine must
// reproduce them exactly — same statistics, same simulated clock, same
// checksum.  (water and cholesky race their reduction updates under the
// goroutine engine, so their per-run statistics are not stable enough to
// diff; TestLockstepDeterminism pins those.)
func TestLockstepMatchesGoroutineEngine(t *testing.T) {
	for _, app := range []string{"quicksort", "matrix", "sor"} {
		for _, scheme := range []string{"rt", "vm", "hybrid"} {
			t.Run(fmt.Sprintf("%s/%s", app, scheme), func(t *testing.T) {
				base, err := bench.RunApp(app, midway.Config{Nodes: 4, Scheme: scheme}, bench.ScaleSmall)
				if err != nil {
					t.Fatal(err)
				}
				lock, err := bench.RunApp(app, midway.Config{Nodes: 4, Scheme: scheme, Sched: "lockstep"}, bench.ScaleSmall)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(base, lock) {
					t.Errorf("results differ between engines:\ngoroutine: %+v\nlockstep:  %+v", base, lock)
				}
			})
		}
	}
}

// TestLockstepDeterminism: every application run twice under the lockstep
// engine must produce identical results — including water and cholesky,
// which the goroutine engine cannot pin.
func TestLockstepDeterminism(t *testing.T) {
	for _, app := range lockstepApps {
		t.Run(app, func(t *testing.T) {
			cfg := midway.Config{Nodes: 4, Scheme: "rt", Sched: "lockstep"}
			a, err := bench.RunApp(app, cfg, bench.ScaleSmall)
			if err != nil {
				t.Fatal(err)
			}
			b, err := bench.RunApp(app, cfg, bench.ScaleSmall)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("lockstep results differ between runs:\nfirst:  %+v\nsecond: %+v", a, b)
			}
		})
	}
}

// TestLockstepValidation: the lockstep engine drives simulated time
// itself, so every wall-clock transport layer must be rejected with a
// clear error at construction.
func TestLockstepValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  midway.Config
	}{
		{"tcp", midway.Config{Nodes: 2, Sched: "lockstep", UseTCP: true}},
		{"tcpaddrs", midway.Config{Nodes: 2, Sched: "lockstep", TCPAddrs: []string{"a", "b"}}},
		{"fault", midway.Config{Nodes: 2, Sched: "lockstep", FaultSpec: "drop=0.1"}},
		{"reliable", midway.Config{Nodes: 2, Sched: "lockstep", Reliable: true}},
		{"reliablespec", midway.Config{Nodes: 2, Sched: "lockstep", ReliableSpec: "giveup=3"}},
		{"heartbeat", midway.Config{Nodes: 2, Sched: "lockstep", Heartbeat: 1}},
		{"badname", midway.Config{Nodes: 2, Sched: "stepless"}},
		{"threads-without-lockstep", midway.Config{Nodes: 2, SchedThreads: 2}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := midway.NewSystem(c.cfg); err == nil {
				t.Fatalf("NewSystem(%+v) succeeded, want error", c.cfg)
			}
		})
	}
}

// TestLockstepThreadCap: results are identical at every engine thread
// budget, including strictly serial execution.
func TestLockstepThreadCap(t *testing.T) {
	base, err := bench.RunApp("sor", midway.Config{Nodes: 4, Scheme: "rt", Sched: "lockstep"}, bench.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 2, 4} {
		capped, err := bench.RunApp("sor", midway.Config{Nodes: 4, Scheme: "rt", Sched: "lockstep", SchedThreads: threads}, bench.ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, capped) {
			t.Errorf("results differ at SchedThreads=%d:\nuncapped: %+v\ncapped:   %+v", threads, capped, base)
		}
	}
}

// TestLockstepCrashGoldenMatrix: crash recovery composes with the
// lockstep engine — KillNode/Proc.Crash recovery runs at an engine
// quiescence point — and the survivor-only result must be byte-identical
// to the committed crash goldens the goroutine engine produced.  No
// simulated statistic moves between engines on this matrix.
func TestLockstepCrashGoldenMatrix(t *testing.T) {
	const nodes = 4
	for _, scheme := range []string{"rt", "vm", "hybrid"} {
		for _, mode := range []string{"lock", "barrier", "idle"} {
			t.Run(scheme+"/"+mode, func(t *testing.T) {
				cfg := midway.Config{Nodes: nodes, Scheme: scheme, OnCrash: midway.CrashDegrade, Sched: "lockstep"}
				mem, rep := crashWorkload(t, cfg, mode)
				if got, want := leU64(mem[:8]), crashOracle(nodes); got != want {
					t.Errorf("survivor counter = %d, want %d", got, want)
				}
				if rep == nil {
					t.Fatal("no crash report after a crashed run")
				}
				got := crashSummary(nodes, mem, rep)
				golden := filepath.Join("testdata", "crash", scheme+"_"+mode+".golden")
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("missing golden (generate with the goroutine-engine matrix first): %v", err)
				}
				if got != string(want) {
					t.Errorf("lockstep crash output diverged from the goroutine-engine golden:\ngot:\n%swant:\n%s", got, want)
				}
			})
		}
	}
}

// TestLockstepTraceInvariance: under the lockstep engine the full JSONL
// protocol event trace — every message, clock stamp and statistic — is
// byte-identical across GOMAXPROCS settings, for every application and
// detection scheme.  This is the engine's central claim measured at its
// finest observable grain.
func TestLockstepTraceInvariance(t *testing.T) {
	trace := func(app, scheme string) []byte {
		var buf bytes.Buffer
		cfg := midway.Config{Nodes: 4, Scheme: scheme, Sched: "lockstep", Trace: &buf, TraceFormat: "jsonl"}
		if _, err := bench.RunApp(app, cfg, bench.ScaleSmall); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, app := range lockstepApps {
		for _, scheme := range []string{"rt", "vm", "hybrid"} {
			t.Run(app+"/"+scheme, func(t *testing.T) {
				prev := runtime.GOMAXPROCS(1)
				first := trace(app, scheme)
				runtime.GOMAXPROCS(4)
				second := trace(app, scheme)
				runtime.GOMAXPROCS(prev)
				if len(first) == 0 {
					t.Fatal("empty trace")
				}
				if !bytes.Equal(first, second) {
					t.Errorf("JSONL trace differs across GOMAXPROCS 1 vs 4 (%d vs %d bytes)", len(first), len(second))
				}
			})
		}
	}
}
