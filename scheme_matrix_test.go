package midway_test

import (
	"fmt"
	"testing"

	"midway"
)

// TestSchemeMatrixOracle runs one small mixed-granularity workload under
// every registered write-detection scheme at 1, 2 and 4 processors and
// verifies the shared state against a sequentially computed oracle: a
// lock-guarded counter (fine, untagged), a barrier-exchanged slot array
// (tagged fine) and a bulk byte array rewritten with area stores (tagged
// coarse).  The tags only steer the hybrid scheme's routing; every scheme
// must produce identical results.
func TestSchemeMatrixOracle(t *testing.T) {
	const (
		rounds    = 6
		bulkBytes = 2048
	)
	for _, scheme := range midway.SchemeNames() {
		for _, nodes := range []int{1, 2, 4} {
			if scheme == "none" && nodes > 1 {
				continue // standalone performs no collection at all
			}
			t.Run(fmt.Sprintf("%s/%dp", scheme, nodes), func(t *testing.T) {
				sys, err := midway.NewSystem(midway.Config{Nodes: nodes, Scheme: scheme})
				if err != nil {
					t.Fatal(err)
				}
				counter := sys.MustAlloc("counter", 8, 8)
				slots := sys.AllocU64("slots", nodes, 8, midway.WithGranularity(midway.GranFine))
				bulk := sys.MustAlloc("bulk", bulkBytes, 64, midway.WithGranularity(midway.GranCoarse))
				lock := sys.NewLock("counter", midway.RangeAt(counter, 8))
				bar := sys.NewBarrier("round", slots.Range(), midway.RangeAt(bulk, bulkBytes))

				// Declare per-node write partitions: the blast scheme has no
				// detection to discover them.
				parts := make([][]midway.Range, nodes)
				for i := 0; i < nodes; i++ {
					lo := i * bulkBytes / nodes
					hi := (i + 1) * bulkBytes / nodes
					parts[i] = []midway.Range{
						slots.Slice(i, i+1),
						midway.RangeAt(bulk+midway.Addr(lo), uint32(hi-lo)),
					}
				}
				sys.SetBarrierParts(bar, parts)

				wantCounter := uint64(rounds * nodes * (nodes + 1) / 2)
				err = sys.Run(func(p *midway.Proc) {
					me := p.ID()
					lo := me * bulkBytes / nodes
					hi := (me + 1) * bulkBytes / nodes
					for r := 1; r <= rounds; r++ {
						p.Acquire(lock)
						p.WriteU64(counter, p.ReadU64(counter)+uint64(me+1))
						p.Release(lock)

						slots.Set(p, me, uint64(me*1000+r))
						seg := make([]byte, hi-lo)
						for i := range seg {
							seg[i] = byte((lo + i) ^ r)
						}
						p.WriteBytes(midway.RangeAt(bulk+midway.Addr(lo), uint32(hi-lo)), seg)
						p.Barrier(bar)

						// Every node sees every other node's round-r state.
						for j := 0; j < nodes; j++ {
							if got := slots.Get(p, j); got != uint64(j*1000+r) {
								panic(fmt.Sprintf("node %d round %d: slot %d = %d", me, r, j, got))
							}
						}
						probe := make([]byte, 1)
						for j := 0; j < nodes; j++ {
							off := j * bulkBytes / nodes
							p.ReadBytes(midway.RangeAt(bulk+midway.Addr(off), 1), probe)
							if probe[0] != byte(off^r) {
								panic(fmt.Sprintf("node %d round %d: bulk[%d] = %d, want %d",
									me, r, off, probe[0], byte(off^r)))
							}
						}
						p.Barrier(bar) // writers of round r+1 wait for the readers
					}
					// The counter's final value reaches everyone via the lock.
					p.AcquireShared(lock)
					if got := p.ReadU64(counter); got != wantCounter {
						panic(fmt.Sprintf("node %d: counter = %d, want %d", me, got, wantCounter))
					}
					p.Release(lock)
				})
				if err != nil {
					t.Fatal(err)
				}
				// Node 0's copy of the barrier-bound bulk array matches the
				// oracle byte for byte.
				final := make([]byte, bulkBytes)
				sys.ReadFinal(midway.RangeAt(bulk, bulkBytes), final)
				for i, b := range final {
					if b != byte(i^rounds) {
						t.Fatalf("bulk[%d] = %d, want %d", i, b, byte(i^rounds))
					}
				}
			})
		}
	}
}
