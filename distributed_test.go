package midway_test

import (
	"fmt"
	"sync"
	"testing"

	"midway"
)

// TestMultiProcessStyleDeployment runs three independent System instances
// — each hosting a single node, exactly as three separate OS processes
// would — meshed over real TCP sockets.  Each instance performs the
// identical SPMD setup (allocations and object creation in the same
// order), which is the contract multi-process deployments rely on.
func TestMultiProcessStyleDeployment(t *testing.T) {
	const nodes = 3
	addrs := make([]string, nodes)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", 43110+i)
	}

	var wg sync.WaitGroup
	errs := make([]error, nodes)
	for id := 0; id < nodes; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = runOneProcess(id, addrs)
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Errorf("node %d: %v", id, err)
		}
	}
}

// runOneProcess is the whole life of one "process": mesh join, identical
// setup, SPMD run, local verification.
func runOneProcess(id int, addrs []string) error {
	sys, err := midway.NewSystem(midway.Config{
		Nodes:     len(addrs),
		Strategy:  midway.RT,
		TCPAddrs:  addrs,
		TCPNodeID: id,
	})
	if err != nil {
		return err
	}

	// Identical SPMD setup in every process.
	counter := sys.MustAlloc("counter", 8, 8)
	slots := sys.AllocU64("slots", len(addrs), 8)
	lock := sys.NewLock("counter", midway.RangeAt(counter, 8))
	bar := sys.NewBarrier("exchange", slots.Range())
	sys.PresetU64(counter, 1000)

	const rounds = 8
	return sys.Run(func(p *midway.Proc) {
		me := p.ID()
		if me != id {
			panic(fmt.Sprintf("process for node %d ran as %d", id, me))
		}
		for r := 1; r <= rounds; r++ {
			p.Acquire(lock)
			p.WriteU64(counter, p.ReadU64(counter)+1)
			p.Release(lock)

			slots.Set(p, me, uint64(me*100+r))
			p.Barrier(bar)
			for j := 0; j < len(addrs); j++ {
				if got := slots.Get(p, j); got != uint64(j*100+r) {
					panic(fmt.Sprintf("node %d round %d: slot %d = %d", me, r, j, got))
				}
			}
			p.Barrier(bar)
		}
		// Everyone pulls the final counter, then crosses one last barrier
		// so no process leaves (taking its protocol handler with it)
		// while others still need it to serve requests.
		p.AcquireShared(lock)
		got := p.ReadU64(counter)
		p.Release(lock)
		p.Barrier(bar)
		if want := uint64(1000 + len(addrs)*rounds); got != want {
			panic(fmt.Sprintf("node %d: counter = %d, want %d", me, got, want))
		}
	})
}
