package midway_test

import (
	"bytes"
	"reflect"
	"testing"

	"midway"
	"midway/internal/apps/sor"
	"midway/internal/bench"
	"midway/internal/obs"
)

// These tests pin the race detector's two end-to-end guarantees: the
// planted entry-consistency violation is found deterministically under
// both execution engines, and clean applications produce zero findings
// under every scheme (no false positives).  A third contract — the
// detector observes the cost model without participating in it — is
// pinned by comparing a detecting run's results and trace against a
// non-detecting run's.

// engines names the two execution engines for subtests.
var engines = []struct{ name, sched string }{
	{"goroutine", ""},
	{"lockstep", "lockstep"},
}

// plantedSORRun executes the sor workload with its deliberate unguarded
// write armed, returning the JSONL trace.
func plantedSORRun(t *testing.T, scheme, sched string, detect bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	mcfg := midway.Config{
		Nodes: 4, Scheme: scheme, Sched: sched,
		RaceDetect: detect, Trace: &buf, TraceFormat: "jsonl",
	}
	scfg := sor.Default()
	scfg.M, scfg.Iters = 64, 3
	scfg.PlantRace = true
	if _, err := sor.Run(mcfg, scfg); err != nil {
		t.Fatalf("planted sor run (%s/%s): %v", scheme, sched, err)
	}
	return buf.Bytes()
}

// raceEvents extracts the detector's findings from a JSONL trace.
func raceEvents(t *testing.T, trace []byte) (unguarded, conflicts []obs.Event) {
	t.Helper()
	events, err := obs.ReadJSONL(bytes.NewReader(trace))
	if err != nil {
		t.Fatalf("parsing trace: %v", err)
	}
	for _, e := range events {
		switch e.Kind {
		case obs.EvUnguardedWrite:
			unguarded = append(unguarded, e)
		case obs.EvUnorderedConflict:
			conflicts = append(conflicts, e)
		}
	}
	return unguarded, conflicts
}

// TestRaceDetectorFindsPlantedWrite: the sor workload's planted unguarded
// write is found — exactly once, at the planted node and region, with
// identical findings under both engines and across repeated runs — and
// the surrounding run still verifies (the planted store corrupts nothing
// the oracle reads).
func TestRaceDetectorFindsPlantedWrite(t *testing.T) {
	for _, scheme := range []string{"rt", "vm", "hybrid"} {
		var perEngine [][]obs.Event
		for _, eng := range engines {
			t.Run(scheme+"/"+eng.name, func(t *testing.T) {
				trace := plantedSORRun(t, scheme, eng.sched, true)
				unguarded, conflicts := raceEvents(t, trace)
				if len(unguarded) != 1 {
					t.Fatalf("found %d unguarded writes, want exactly 1: %+v", len(unguarded), unguarded)
				}
				f := unguarded[0]
				if f.Node != 3 {
					t.Errorf("flagged node %d, want 3 (the planted writer)", f.Node)
				}
				if f.Name != "sor.scratch.lock" {
					t.Errorf("finding names guard %q, want sor.scratch.lock", f.Name)
				}
				if f.Obj < 0 {
					t.Error("finding names no guarding lock, want sor.scratch.lock's id")
				}
				if len(conflicts) != 0 {
					t.Errorf("found %d unordered conflicts, want 0: %+v", len(conflicts), conflicts)
				}
				// Deterministic: an identical run flags the identical event.
				again, _ := raceEvents(t, plantedSORRun(t, scheme, eng.sched, true))
				if !reflect.DeepEqual(unguarded, again) {
					t.Errorf("findings differ between identical runs:\nfirst:  %+v\nsecond: %+v",
						unguarded, again)
				}
				perEngine = append(perEngine, unguarded)
			})
		}
		// The engines must agree on the finding's coordinates.  Lamport
		// stamps are excluded: the lockstep engine batches deliveries at
		// quiescence points, so clock merge counts differ from the
		// goroutine engine's (within each engine they are pinned above).
		if len(perEngine) == 2 {
			a, b := perEngine[0][0], perEngine[1][0]
			a.A, b.A = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s: engines disagree on the planted finding:\ngoroutine: %+v\nlockstep:  %+v",
					scheme, perEngine[0], perEngine[1])
			}
		}
	}
}

// TestRaceDetectorReport: the analyzer surfaces findings as a race-report
// section with the planted write's coordinates.
func TestRaceDetectorReport(t *testing.T) {
	trace := plantedSORRun(t, "rt", "", true)
	a, err := obs.Analyze(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if a.Races == nil {
		t.Fatal("analysis of a detecting trace carries no race report")
	}
	if got := len(a.Races.Unguarded); got != 1 {
		t.Fatalf("race report lists %d unguarded writes, want 1", got)
	}
	u := a.Races.Unguarded[0]
	if u.Node != 3 || u.Guard != "sor.scratch.lock" {
		t.Errorf("race report coordinates node=%d guard=%q, want node=3 guard=sor.scratch.lock",
			u.Node, u.Guard)
	}
	var report bytes.Buffer
	a.WriteReport(&report)
	if !bytes.Contains(report.Bytes(), []byte("race report")) {
		t.Error("rendered report has no race-report section")
	}
	if !bytes.Contains(report.Bytes(), []byte("sor.scratch.lock")) {
		t.Error("rendered race report does not name the violated guard")
	}
}

// TestRaceDetectorNoFalsePositives sweeps every application over rt, vm
// and hybrid under both engines with the detector on: correctly
// synchronized programs must produce zero findings.
func TestRaceDetectorNoFalsePositives(t *testing.T) {
	apps := []string{"sor", "matrix", "water", "quicksort", "cholesky"}
	for _, scheme := range []string{"rt", "vm", "hybrid"} {
		for _, eng := range engines {
			for _, app := range apps {
				t.Run(scheme+"/"+eng.name+"/"+app, func(t *testing.T) {
					var buf bytes.Buffer
					cfg := midway.Config{
						Nodes: 2, Scheme: scheme, Sched: eng.sched,
						RaceDetect: true, Trace: &buf, TraceFormat: "jsonl",
					}
					if _, err := bench.RunApp(app, cfg, bench.ScaleSmall); err != nil {
						t.Fatal(err)
					}
					unguarded, conflicts := raceEvents(t, buf.Bytes())
					if len(unguarded) != 0 || len(conflicts) != 0 {
						t.Errorf("clean %s flagged %d unguarded writes, %d conflicts:\n%+v\n%+v",
							app, len(unguarded), len(conflicts), unguarded, conflicts)
					}
				})
			}
		}
	}
}

// TestRaceDetectorInert pins the zero-cost contract end to end: enabling
// the detector changes no simulated number, and the detecting trace is
// byte-identical to the non-detecting trace once the detector's own
// events are removed — even on the racy workload, where it actually
// finds something.
func TestRaceDetectorInert(t *testing.T) {
	// Clean workload: results and trace must match exactly.
	var off, on bytes.Buffer
	plain, err := bench.RunApp("sor", midway.Config{
		Nodes: 2, Scheme: "rt", Trace: &off, TraceFormat: "jsonl",
	}, bench.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	detecting, err := bench.RunApp("sor", midway.Config{
		Nodes: 2, Scheme: "rt", RaceDetect: true, Trace: &on, TraceFormat: "jsonl",
	}, bench.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, detecting) {
		t.Errorf("detector-on results differ from detector-off:\noff: %+v\non:  %+v", plain, detecting)
	}
	if !bytes.Equal(off.Bytes(), on.Bytes()) {
		t.Error("detector-on trace of a clean run is not byte-identical to detector-off")
	}

	// Racy workload: the traces must differ only by the detector's events.
	offTrace := plantedSORRun(t, "rt", "", false)
	onTrace := plantedSORRun(t, "rt", "", true)
	if bytes.Equal(offTrace, onTrace) {
		t.Fatal("detector-on planted trace is identical to detector-off (no finding was emitted)")
	}
	if !bytes.Equal(offTrace, stripRaceLines(onTrace)) {
		t.Error("detector-on planted trace differs beyond the detector's own events")
	}
}

// stripRaceLines removes the detector's event lines from a JSONL trace.
func stripRaceLines(trace []byte) []byte {
	var out []byte
	for _, line := range bytes.SplitAfter(trace, []byte("\n")) {
		if bytes.Contains(line, []byte(`"ev":"unguarded-write"`)) ||
			bytes.Contains(line, []byte(`"ev":"unordered-conflict"`)) {
			continue
		}
		out = append(out, line...)
	}
	return out
}
