package midway_test

import (
	"testing"

	"midway"
)

func newArraySystem(t *testing.T) *midway.System {
	t.Helper()
	sys, err := midway.NewSystem(midway.Config{Nodes: 1, Strategy: midway.RT})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestF64Array(t *testing.T) {
	sys := newArraySystem(t)
	arr := sys.AllocF64("a", 10, 8)
	if arr.Len() != 10 {
		t.Errorf("Len = %d", arr.Len())
	}
	if rg := arr.Range(); rg.Size != 80 {
		t.Errorf("Range size = %d", rg.Size)
	}
	if rg := arr.Slice(2, 5); rg.Size != 24 || rg.Addr != arr.At(2) {
		t.Errorf("Slice = %+v", rg)
	}
	arr.Preset(sys, 3, 1.5)
	err := sys.Run(func(p *midway.Proc) {
		if arr.Get(p, 3) != 1.5 {
			panic("preset not visible")
		}
		arr.Set(p, 4, 2.5)
		if arr.Get(p, 4) != 2.5 {
			panic("set/get mismatch")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.ReadFinalF64(arr.At(4)); got != 2.5 {
		t.Errorf("ReadFinalF64 = %g", got)
	}
}

func TestArrayGeometry(t *testing.T) {
	sys := newArraySystem(t)
	u64 := sys.AllocU64("u64", 8, 8)
	u32 := sys.AllocU32("u32", 8, 4)
	if u64.Len() != 8 || u32.Len() != 8 {
		t.Error("Len wrong")
	}
	if u64.Range().Size != 64 || u32.Range().Size != 32 {
		t.Error("Range size wrong")
	}
	if rg := u64.Slice(2, 4); rg.Size != 16 || rg.Addr != u64.At(2) {
		t.Errorf("u64 Slice = %+v", rg)
	}
	if rg := u32.Slice(2, 4); rg.Size != 8 || rg.Addr != u32.At(2) {
		t.Errorf("u32 Slice = %+v", rg)
	}
	for name, fn := range map[string]func(){
		"u64 slice":  func() { u64.Slice(5, 3) },
		"u32 slice":  func() { u32.Slice(0, 9) },
		"u64 at":     func() { u64.At(8) },
		"u32 at":     func() { u32.At(-1) },
		"u64 alloc0": func() { sys.AllocU64("z", 0, 8) },
		"u32 alloc0": func() { sys.AllocU32("z", 0, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestU64Array(t *testing.T) {
	sys := newArraySystem(t)
	arr := sys.AllocU64("a", 4, 8)
	arr.Preset(sys, 0, 7)
	err := sys.Run(func(p *midway.Proc) {
		arr.Set(p, 1, arr.Get(p, 0)*3)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.ReadFinalU64(arr.At(1)); got != 21 {
		t.Errorf("U64 = %d", got)
	}
}

func TestU32Array(t *testing.T) {
	sys := newArraySystem(t)
	arr := sys.AllocU32("a", 6, 4)
	arr.Preset(sys, 5, 9)
	err := sys.Run(func(p *midway.Proc) {
		arr.Set(p, 0, arr.Get(p, 5)+1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.ReadFinalU32(arr.At(0)); got != 10 {
		t.Errorf("U32 = %d", got)
	}
}

func TestArrayBoundsPanics(t *testing.T) {
	sys := newArraySystem(t)
	arr := sys.AllocF64("a", 4, 8)
	cases := map[string]func(){
		"At(-1)":      func() { arr.At(-1) },
		"At(len)":     func() { arr.At(4) },
		"Slice(3,2)":  func() { arr.Slice(3, 2) },
		"Slice(0,5)":  func() { arr.Slice(0, 5) },
		"Slice(-1,2)": func() { arr.Slice(-1, 2) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		})
	}
}

func TestZeroLengthAllocPanics(t *testing.T) {
	sys := newArraySystem(t)
	defer func() {
		if recover() == nil {
			t.Error("zero-length array allocation did not panic")
		}
	}()
	sys.AllocF64("zero", 0, 8)
}
