package midway_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"midway"
	"midway/internal/bench"
	"midway/internal/obs"
)

// These tests pin the observability layer's two end-to-end guarantees:
// a traced run's simulated results are byte-identical to an untraced
// run's (tracing observes the cost model, never participates in it), and
// a deterministic run's JSONL trace is reproducible byte-for-byte.

// traceSchemes is every multi-node registry scheme.
func traceSchemes() []string {
	var out []string
	for _, s := range midway.SchemeNames() {
		if s != "none" {
			out = append(out, s)
		}
	}
	return out
}

// tracedRun executes app on 2 nodes at small scale with a JSONL trace.
func tracedRun(t *testing.T, app, scheme string, buf *bytes.Buffer) {
	t.Helper()
	cfg := midway.Config{Nodes: 2, Scheme: scheme, Trace: buf, TraceFormat: "jsonl"}
	if _, err := bench.RunApp(app, cfg, bench.ScaleSmall); err != nil {
		t.Fatal(err)
	}
}

// TestTraceGoldenJSONL: a seeded 2-node run writes the same JSONL bytes
// every time, for every scheme.  quicksort is included for rt and vm —
// its round scheduler makes even the task-queue app reproducible.
func TestTraceGoldenJSONL(t *testing.T) {
	cases := []struct{ app, scheme string }{}
	for _, s := range traceSchemes() {
		cases = append(cases, struct{ app, scheme string }{"sor", s})
	}
	cases = append(cases,
		struct{ app, scheme string }{"quicksort", "rt"},
		struct{ app, scheme string }{"quicksort", "vm"},
	)
	for _, c := range cases {
		t.Run(c.app+"/"+c.scheme, func(t *testing.T) {
			var first, second bytes.Buffer
			tracedRun(t, c.app, c.scheme, &first)
			tracedRun(t, c.app, c.scheme, &second)
			if first.Len() == 0 {
				t.Fatal("empty trace")
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Errorf("JSONL trace differs between identical runs (%d vs %d bytes)",
					first.Len(), second.Len())
			}
			// The trace must parse and analyze cleanly.
			a, err := obs.Analyze(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if a.Events == 0 {
				t.Error("analyzer saw no events")
			}
		})
	}
}

// TestTraceStatsInvariance: enabling tracing and profiling changes no
// simulated number — the full Result (seconds, per-proc means, totals,
// checksum) matches an untraced run's exactly, for every scheme.
func TestTraceStatsInvariance(t *testing.T) {
	for _, scheme := range traceSchemes() {
		t.Run(scheme, func(t *testing.T) {
			plain, err := bench.RunApp("sor", midway.Config{Nodes: 2, Scheme: scheme}, bench.ScaleSmall)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			traced, err := bench.RunApp("sor", midway.Config{
				Nodes: 2, Scheme: scheme,
				Trace: &buf, TraceFormat: "jsonl", ProfileObjects: true,
			}, bench.ScaleSmall)
			if err != nil {
				t.Fatal(err)
			}
			if len(traced.ObjectProfiles) == 0 {
				t.Error("profiled run carries no object profiles")
			}
			// The profiles are observational extras; everything else must
			// be identical.
			traced.ObjectProfiles, traced.RegionProfiles = nil, nil
			if !reflect.DeepEqual(plain, traced) {
				t.Errorf("traced run's results differ from untraced:\nplain:  %+v\ntraced: %+v",
					plain, traced)
			}
		})
	}
}

// TestTraceChromeExport: the chrome sink's end-to-end output is a valid
// trace_event document with balanced async spans.
func TestTraceChromeExport(t *testing.T) {
	var buf bytes.Buffer
	cfg := midway.Config{Nodes: 2, Scheme: "rt", Trace: &buf, TraceFormat: "chrome"}
	if _, err := bench.RunApp("sor", cfg, bench.ScaleSmall); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int32  `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome trace: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty chrome trace")
	}
	open := 0
	nodes := map[int32]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "b":
			open++
		case "e":
			open--
		case "i", "M":
		default:
			t.Errorf("unknown phase %q", e.Ph)
		}
		nodes[e.Pid] = true
	}
	if open != 0 {
		t.Errorf("%d unbalanced async spans", open)
	}
	if len(nodes) != 2 {
		t.Errorf("%d nodes in trace, want 2", len(nodes))
	}
}

// TestTraceFormatValidation: a bad format and a format without a writer
// are rejected at system construction.
func TestTraceFormatValidation(t *testing.T) {
	if _, err := midway.NewSystem(midway.Config{Nodes: 2, Trace: &bytes.Buffer{}, TraceFormat: "xml"}); err == nil {
		t.Error("unknown trace format accepted")
	}
	if _, err := midway.NewSystem(midway.Config{Nodes: 2, TraceFormat: "jsonl"}); err == nil {
		t.Error("TraceFormat without Trace accepted")
	}
}
