package midway_test

import (
	"testing"

	"midway"
	"midway/internal/apps/churn"
	"midway/internal/member"
)

// churnSchedule is the shared elastic schedule for the membership
// acceptance tests: two spares join mid-run, then one founder and one of
// the spares drain gracefully.
func churnSchedule() churn.Config {
	return churn.Config{
		Tasks:      96,
		WorkCycles: 2000,
		Joins:      []member.ScheduleEntry{{Node: 2, Round: 10}, {Node: 3, Round: 20}},
		Drains:     []member.ScheduleEntry{{Node: 1, Round: 48}, {Node: 2, Round: 60}},
	}
}

// TestElasticMatchesFixedMembership is the headline acceptance check: a
// run with a mid-run join and a mid-run graceful drain completes with the
// same final memory contents as a fixed-membership run of the surviving
// set.
func TestElasticMatchesFixedMembership(t *testing.T) {
	for _, sched := range []string{"goroutine", "lockstep"} {
		fixed, err := churn.Run(
			midway.Config{Nodes: 2, Strategy: midway.RT, Sched: sched},
			churn.Config{Tasks: 96, WorkCycles: 2000})
		if err != nil {
			t.Fatalf("fixed/%s: %v", sched, err)
		}
		elastic, err := churn.Run(
			midway.Config{Nodes: 2, MaxNodes: 4, Strategy: midway.RT, Sched: sched},
			churnSchedule())
		if err != nil {
			t.Fatalf("elastic/%s: %v", sched, err)
		}
		if elastic.Checksum != fixed.Checksum {
			t.Errorf("%s: elastic checksum %g != fixed checksum %g",
				sched, elastic.Checksum, fixed.Checksum)
		}
	}
}

// TestLockstepChurnByteIdentical runs the same churn schedule twice under
// the lockstep engine and demands byte-identical simulated results:
// checksum, simulated time, and every traffic counter.
func TestLockstepChurnByteIdentical(t *testing.T) {
	run := func() (float64, float64, uint64, uint64) {
		r, err := churn.Run(
			midway.Config{Nodes: 2, MaxNodes: 4, Strategy: midway.VM, Sched: "lockstep"},
			churnSchedule())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return r.Checksum, r.Seconds, r.Total.BytesTransferred, r.Total.Messages
	}
	c1, s1, b1, m1 := run()
	c2, s2, b2, m2 := run()
	if c1 != c2 || s1 != s2 || b1 != b2 || m1 != m2 {
		t.Fatalf("lockstep churn not byte-identical: (%g,%g,%d,%d) vs (%g,%g,%d,%d)",
			c1, s1, b1, m1, c2, s2, b2, m2)
	}
}

// TestJoinUnderPartition joins a node while the transport is dropping,
// duplicating, reordering and delaying messages: the reliability layer
// must hide every fault from the handshake and the run must still verify.
func TestJoinUnderPartition(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		cfg := midway.Config{
			Nodes: 2, MaxNodes: 3, Strategy: midway.RT,
			FaultSpec: "drop=0.05,dup=0.02,reorder=0.1,delay=200us,seed=" +
				string(rune('0'+seed%10)),
		}
		r, err := churn.Run(cfg, churn.Config{
			Tasks:      48,
			WorkCycles: 2000,
			Joins:      []member.ScheduleEntry{{Node: 2, Round: 8}},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.Checksum == 0 {
			t.Fatalf("seed %d: zero checksum", seed)
		}
	}
}

// TestCrashDuringDrainDegrades asks a node to drain, then crashes it
// before it reaches its release boundary: the run must fall back to the
// crash-reclamation path (no deadlock, no double-reclaim) and the
// survivors complete the workload.
func TestCrashDuringDrainDegrades(t *testing.T) {
	for _, sched := range []string{"goroutine", "lockstep"} {
		sys, err := midway.NewSystem(midway.Config{
			Nodes: 3, MaxNodes: 3, Strategy: midway.RT,
			Sched: sched, OnCrash: midway.CrashDegrade,
		})
		if err != nil {
			t.Fatal(err)
		}
		const perNode = 4
		counter := sys.MustAlloc("counter", 8, 8)
		lock := sys.NewLock("counter", midway.RangeAt(counter, 8))
		done := sys.NewBarrier("done")
		err = sys.Run(func(p *midway.Proc) {
			id := p.ID()
			for i := 0; i < perNode; i++ {
				p.Acquire(lock)
				p.WriteU64(counter, p.ReadU64(counter)+1)
				p.Release(lock)
				if id == 2 && i == 1 {
					// The drain request lands, but the node dies holding
					// the lock before its next release boundary.
					sys.DrainNode(2)
					p.Acquire(lock)
					p.WriteU64(counter, p.ReadU64(counter)+100)
					p.Crash()
				}
			}
			// Rendezvous (the barrier re-forms over the survivors), then
			// node 0 pulls the token once so ReadFinal sees the final
			// counter in its local copy.
			p.Barrier(done)
			if id == 0 {
				p.Acquire(lock)
				p.Release(lock)
			}
		})
		if err != nil {
			t.Fatalf("%s: run failed instead of degrading: %v", sched, err)
		}
		// The crashed node's unreleased +100 must be discarded; its prior
		// released increments may or may not survive reclamation
		// (recovery restores the last live predecessor's copy).
		got := sys.ReadFinalU64(counter)
		if got < 2*perNode || got > 2*perNode+2 {
			t.Errorf("%s: counter = %d, want in [%d, %d]", sched, got, 2*perNode, 2*perNode+2)
		}
		if st := sys.MemberStatus(2); st != midway.MemberDead {
			t.Errorf("%s: node 2 status = %v, want dead", sched, st)
		}
		rep := sys.CrashReport()
		if rep == nil || len(rep.Nodes) != 1 || rep.Nodes[0] != 2 {
			t.Errorf("%s: crash report = %+v, want nodes [2]", sched, rep)
		}
	}
}

// TestDoubleJoinSameID checks the error paths of the admission handshake:
// joining a live member, a node beyond capacity, and the same id twice.
func TestDoubleJoinSameID(t *testing.T) {
	sys, err := midway.NewSystem(midway.Config{Nodes: 2, MaxNodes: 3, Strategy: midway.RT})
	if err != nil {
		t.Fatal(err)
	}
	counter := sys.MustAlloc("counter", 8, 8)
	lock := sys.NewLock("counter", midway.RangeAt(counter, 8))
	done := sys.NewBarrier("done")
	err = sys.Run(func(p *midway.Proc) {
		if p.ID() == 0 {
			if err := p.Join(1); err == nil {
				panic("join of live member 1 accepted")
			}
			if err := p.Join(5); err == nil {
				panic("join beyond capacity accepted")
			}
			if err := p.Join(2); err != nil {
				panic("first join of 2 rejected: " + err.Error())
			}
			if err := p.Join(2); err == nil {
				panic("double join of 2 accepted")
			}
		}
		p.Acquire(lock)
		p.WriteU64(counter, p.ReadU64(counter)+1)
		p.Release(lock)
		// Funnel the final value through node 0 for ReadFinal.
		p.Barrier(done)
		if p.ID() == 0 {
			p.Acquire(lock)
			p.Release(lock)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.ReadFinalU64(counter); got != 3 {
		t.Errorf("counter = %d, want 3 (founders plus joiner)", got)
	}
}

// TestMembershipEventsTimeline checks that the public membership event log
// records the schedule in order with monotone epochs.
func TestMembershipEventsTimeline(t *testing.T) {
	sys, err := midway.NewSystem(midway.Config{
		Nodes: 2, MaxNodes: 3, Strategy: midway.RT, Sched: "lockstep",
	})
	if err != nil {
		t.Fatal(err)
	}
	counter := sys.MustAlloc("counter", 8, 8)
	lock := sys.NewLock("counter", midway.RangeAt(counter, 8))
	err = sys.Run(func(p *midway.Proc) {
		id := p.ID()
		for i := 0; i < 4; i++ {
			p.Acquire(lock)
			p.WriteU64(counter, p.ReadU64(counter)+1)
			p.Release(lock)
			if id == 0 && i == 0 {
				if err := p.Join(2); err != nil {
					panic(err)
				}
			}
			if id == 2 && i >= 2 {
				p.Leave()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := sys.MembershipEvents()
	if len(evs) != 2 {
		t.Fatalf("events = %+v, want join then departure", evs)
	}
	if evs[0].Node != 2 || evs[0].Action != midway.MemberJoined {
		t.Errorf("first event = %+v, want node 2 joined", evs[0])
	}
	if evs[1].Node != 2 || evs[1].Action != midway.MemberDeparted {
		t.Errorf("second event = %+v, want node 2 departed", evs[1])
	}
	if evs[0].Epoch >= evs[1].Epoch {
		t.Errorf("epochs not monotone: %d then %d", evs[0].Epoch, evs[1].Epoch)
	}
}
