package midway_test

import (
	"fmt"
	"reflect"
	"testing"

	"midway"
	"midway/internal/bench"
	"midway/internal/stats"
)

// These tests pin the PR's hard invariant: the zero-allocation codec fast
// paths (pooled encoder buffers, zero-copy decoder views) and the batched
// store instrumentation are wall-clock optimizations only — every simulated
// statistic they produce is identical to the reference paths.  CompatCodec
// forces the owned-buffer encode and copying decoders, so the default
// configuration is checked against it arm for arm.

// codecArms runs the barrier workload (deterministic: its protocol
// decisions do not depend on real-time arrival order) under both codec
// arms of the given configuration and requires identical statistics and
// simulated clocks.
func codecArms(t *testing.T, cfg midway.Config) {
	t.Helper()
	fast, fastCycles := barrierWorkload(t, cfg)
	cfg.CompatCodec = true
	compat, compatCycles := barrierWorkload(t, cfg)
	if fast != compat {
		t.Errorf("stats differ between codec arms:\nfast:   %+v\ncompat: %+v", fast, compat)
	}
	if fastCycles != compatCycles {
		t.Errorf("execution cycles differ between codec arms: fast %d, compat %d",
			fastCycles, compatCycles)
	}
}

// TestCodecInvariance: every scheme, over the in-process channel transport
// and over the reliable layer (whose connection implements the
// payload-copying contract, so it is the arm that actually recycles pooled
// encoder buffers).
func TestCodecInvariance(t *testing.T) {
	for _, scheme := range midway.SchemeNames() {
		if scheme == "none" {
			continue // standalone is single-node only
		}
		t.Run(scheme, func(t *testing.T) {
			codecArms(t, midway.Config{Nodes: 4, Scheme: scheme})
		})
		t.Run(scheme+"/reliable", func(t *testing.T) {
			codecArms(t, midway.Config{Nodes: 4, Scheme: scheme, Reliable: true})
		})
	}
}

// TestCodecInvarianceTCP exercises the pooled encoder over real loopback
// sockets: the TCP connection copies payloads into frames synchronously,
// so remote sends ride the pool.
func TestCodecInvarianceTCP(t *testing.T) {
	codecArms(t, midway.Config{Nodes: 2, Scheme: "rt", UseTCP: true})
}

// TestCodecInvarianceApps runs the deterministic benchmark applications
// (matrix, sor — the lock-contended apps' grant order depends on real
// arrival time even in the reference arm) and requires the entire Result —
// simulated seconds, per-processor means, totals and checksum — to be
// identical between codec arms.
func TestCodecInvarianceApps(t *testing.T) {
	if testing.Short() {
		t.Skip("app matrix is slow")
	}
	for _, app := range []string{"matrix", "sor"} {
		for _, scheme := range []string{"rt", "vm", "hybrid"} {
			t.Run(fmt.Sprintf("%s/%s", app, scheme), func(t *testing.T) {
				fast, err := bench.RunApp(app, midway.Config{Nodes: 4, Scheme: scheme}, bench.ScaleSmall)
				if err != nil {
					t.Fatal(err)
				}
				compat, err := bench.RunApp(app, midway.Config{Nodes: 4, Scheme: scheme, CompatCodec: true}, bench.ScaleSmall)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(fast, compat) {
					t.Errorf("results differ between codec arms:\nfast:   %+v\ncompat: %+v", fast, compat)
				}
			})
		}
	}
}

// denseWorkload writes each node's slice of a shared array — batched
// through SetRange when batch is set, element by element otherwise — and
// exchanges it at a bound barrier.  The two forms must be indistinguishable
// in every simulated number.
func denseWorkload(t *testing.T, cfg midway.Config, batch bool) (stats.Snapshot, uint64) {
	t.Helper()
	const per = 96 // per-node elements: crosses the hybrid evidence threshold
	nodes := cfg.Nodes
	sys, err := midway.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arr := sys.AllocU64("dense", nodes*per, 64)
	bar := sys.NewBarrier("round", arr.Range())
	parts := make([][]midway.Range, nodes)
	for i := range parts {
		parts[i] = []midway.Range{arr.Slice(i*per, (i+1)*per)}
	}
	sys.SetBarrierParts(bar, parts)
	err = sys.Run(func(p *midway.Proc) {
		me := p.ID()
		for round := uint64(1); round <= 3; round++ {
			if batch {
				vals := make([]uint64, per)
				for j := range vals {
					vals[j] = uint64(me)<<32 | round<<16 | uint64(j)
				}
				arr.SetRange(p, me*per, vals)
			} else {
				for j := 0; j < per; j++ {
					arr.Set(p, me*per+j, uint64(me)<<32|round<<16|uint64(j))
				}
			}
			p.Barrier(bar)
			for n := 0; n < nodes; n++ {
				for j := 0; j < per; j++ {
					want := uint64(n)<<32 | round<<16 | uint64(j)
					if got := arr.Get(p, n*per+j); got != want {
						panic(fmt.Sprintf("node %d round %d: [%d,%d] = %#x, want %#x", me, round, n, j, got, want))
					}
				}
			}
			p.Barrier(bar)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys.TotalStats(), sys.ExecutionCycles()
}

// TestBatchStoreInvariance: one fused SetRange must equal the element-wise
// store loop in every statistic and in the simulated clock, for every
// scheme (the batch trap entry points promise exact per-element sums).
func TestBatchStoreInvariance(t *testing.T) {
	for _, scheme := range midway.SchemeNames() {
		if scheme == "none" {
			continue
		}
		for _, eager := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/eager=%v", scheme, eager), func(t *testing.T) {
				cfg := midway.Config{Nodes: 4, Scheme: scheme, EagerTimestamps: eager}
				loop, loopCycles := denseWorkload(t, cfg, false)
				batched, batchedCycles := denseWorkload(t, cfg, true)
				if loop != batched {
					t.Errorf("stats differ:\nloop:    %+v\nbatched: %+v", loop, batched)
				}
				if loopCycles != batchedCycles {
					t.Errorf("execution cycles differ: loop %d, batched %d", loopCycles, batchedCycles)
				}
			})
		}
	}
}
